package nonbond

import (
	"tme4a/internal/celllist"
	"tme4a/internal/obs"
	"tme4a/internal/par"
	"tme4a/internal/topol"
	"tme4a/internal/vec"
)

// VerletList is a buffered pair list ("Verlet list"): pairs within
// cutoff+skin are enumerated once and reused until any atom has moved more
// than skin/2, amortizing the cell-list traversal over many MD steps.
// This mirrors GROMACS' Verlet scheme (the paper's reference runs use
// verlet-buffer-tolerance) and the import-region buffering of the
// MDGRAPE-4A cells.
//
// The list is stored bucketed by the cell list's ownership slabs: same[s]
// holds the pairs fully owned by slab s, cross[s*ns+t] the pairs whose
// first atom slab s owns and whose second atom slab t owns. Rebuild fills
// the buckets in parallel (each slab's worker writes only its own buckets)
// and Compute evaluates them with owner-only force writes plus a deferred
// cross-slab pass, so both the pair list and the computed forces/energies
// are bitwise independent of GOMAXPROCS. Steady-state Rebuild and Compute
// allocate nothing.
type VerletList struct {
	Box    vec.Box
	Cutoff float64
	Skin   float64

	cl     *celllist.List
	ns     int
	same   [][]pair
	cross  [][]pair
	dfrc   [][]vec.V // deferred reaction forces, parallel to cross
	part   []slabPartial
	npairs int
	ref    []vec.V // positions at build time
	n      int

	// o, when non-nil, times Rebuild as the neighbor stage and counts
	// rebuilds and buffered pairs.
	o *obs.Recorder
}

// SetObs attaches a stage recorder to the list and its backing cell list
// (nil detaches). Not safe to call concurrently with Rebuild.
func (v *VerletList) SetObs(r *obs.Recorder) {
	v.o = r
	if v.cl != nil {
		v.cl.SetObs(r)
	}
}

type pair struct {
	i, j int32
}

// NewVerletList creates an empty list; Rebuild must be called before use.
func NewVerletList(box vec.Box, cutoff, skin float64) *VerletList {
	return &VerletList{Box: box, Cutoff: cutoff, Skin: skin}
}

// Rebuild regenerates the pair list from the current positions. The atom
// count may differ from the previous build; all internal storage is
// resized and reused.
func (v *VerletList) Rebuild(pos []vec.V, excl *topol.Exclusions) {
	sp := v.o.Start(obs.StageNeighbor)
	defer sp.Stop()
	v.n = len(pos)
	if cap(v.ref) < len(pos) {
		v.ref = make([]vec.V, len(pos))
	}
	v.ref = v.ref[:len(pos)]
	copy(v.ref, pos)

	if v.cl == nil {
		v.cl = celllist.New(v.Box, v.Cutoff+v.Skin)
		v.cl.SetObs(v.o)
	}
	v.cl.Rebuild(pos)
	ns := v.cl.Slabs()
	v.ns = ns
	v.same = resizeBuckets(v.same, ns)
	v.cross = resizeBuckets(v.cross, ns*ns)
	if cap(v.part) < ns {
		v.part = make([]slabPartial, ns)
	}
	v.part = v.part[:ns]
	if cap(v.dfrc) < ns*ns {
		old := v.dfrc
		v.dfrc = make([][]vec.V, ns*ns)
		copy(v.dfrc, old)
	}
	v.dfrc = v.dfrc[:ns*ns]
	for b := range v.cross {
		v.cross[b] = v.cross[b][:0]
	}

	if par.WorkersGrain(ns, 1) == 1 {
		for s := 0; s < ns; s++ {
			v.fillSlab(s, pos, excl)
		}
	} else {
		par.ForRangeGrain(ns, 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				v.fillSlab(s, pos, excl)
			}
		})
	}

	v.npairs = 0
	for s := range v.same {
		v.npairs += len(v.same[s])
	}
	for b := range v.cross {
		v.npairs += len(v.cross[b])
		// Match the bucket's capacity, not its length: bucket populations
		// fluctuate a little between rebuilds, and sizing to the exact
		// length would reallocate dfrc on every one-pair growth.
		if cap(v.dfrc[b]) < cap(v.cross[b]) {
			v.dfrc[b] = make([]vec.V, cap(v.cross[b]))
		}
		v.dfrc[b] = v.dfrc[b][:len(v.cross[b])]
	}
	v.o.Add(obs.CounterVerletRebuilds, 1)
	v.o.Add(obs.CounterVerletPairs, int64(v.npairs))
}

// fillSlab collects slab s's candidate pairs into its own buckets; safe to
// run concurrently for distinct slabs.
func (v *VerletList) fillSlab(s int, pos []vec.V, excl *topol.Exclusions) {
	sm := v.same[s][:0]
	base := s * v.ns
	v.cl.ForEachPairInSlab(s, pos, func(i, j int, d vec.V, r2 float64, tgt int) {
		if excl.Excluded(i, j) {
			return
		}
		pr := pair{int32(i), int32(j)}
		if tgt == s {
			sm = append(sm, pr)
		} else {
			v.cross[base+tgt] = append(v.cross[base+tgt], pr)
		}
	})
	v.same[s] = sm
}

func resizeBuckets(b [][]pair, n int) [][]pair {
	if cap(b) < n {
		old := b
		b = make([][]pair, n)
		copy(b, old)
	}
	return b[:n]
}

// NeedsRebuild reports whether the list is stale: the atom count changed
// since the last Rebuild, or any atom has moved more than skin/2 (the
// standard sufficient condition for list validity). The atom-count check
// comes first so a grown position slice is never compared against the
// shorter reference copy.
func (v *VerletList) NeedsRebuild(pos []vec.V) bool {
	if len(pos) != v.n || v.n == 0 || len(v.ref) != v.n {
		return true
	}
	lim2 := v.Skin * v.Skin / 4
	for i := range pos {
		d := v.Box.MinImage(pos[i].Sub(v.ref[i]))
		if d.Norm2() > lim2 {
			return true
		}
	}
	return false
}

// NPairs returns the current buffered pair count.
func (v *VerletList) NPairs() int { return v.npairs }

// RefPositions returns the positions the current pair list was built from
// (nil before the first Rebuild). Checkpointing captures this slice so a
// resumed run can re-run Rebuild at exactly the build-time positions:
// Rebuild is a pure function of (positions, exclusions), so re-priming
// from the reference reproduces the pair buckets — and hence the per-pair
// summation order — bitwise, instead of forcing a fresh build at the
// resume positions that would reorder the sums. Callers must not mutate
// the returned slice.
func (v *VerletList) RefPositions() []vec.V {
	if v == nil || v.n == 0 {
		return nil
	}
	return v.ref[:v.n]
}

// Compute evaluates the short-range interactions over the buffered list
// (pairs beyond the true cutoff are skipped), accumulating forces into f.
// Exclusions were applied at Rebuild time. Parallel over slabs, bitwise
// deterministic at any GOMAXPROCS, and allocation-free.
//
//tme:noalloc
func (v *VerletList) Compute(pos []vec.V, q []float64, lj *LJ, alpha float64, f []vec.V) Result {
	ns := v.ns
	rc2 := v.Cutoff * v.Cutoff
	if par.WorkersGrain(ns, 1) == 1 {
		for s := 0; s < ns; s++ {
			v.computeSlab(s, pos, q, lj, alpha, f, rc2)
		}
		if f != nil {
			v.applyDeferred(f, 0, ns)
		}
	} else {
		par.ForRangeGrain(ns, 1, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				v.computeSlab(s, pos, q, lj, alpha, f, rc2)
			}
		})
		if f != nil {
			par.ForRangeGrain(ns, 1, func(lo, hi int) {
				v.applyDeferred(f, lo, hi)
			})
		}
	}
	var res Result
	for s := 0; s < ns; s++ {
		res.ECoul += v.part[s].eCoul
		res.ELJ += v.part[s].eLJ
		res.Pairs += v.part[s].pairs
	}
	return res
}

// computeSlab evaluates slab s's buckets: same-slab pairs update both
// force entries, cross-slab pairs update the owned side and record the
// reaction force for the target slab's deferred pass.
//
//tme:noalloc
func (v *VerletList) computeSlab(s int, pos []vec.V, q []float64, lj *LJ, alpha float64, f []vec.V, rc2 float64) {
	p := &v.part[s]
	*p = slabPartial{}
	for _, pr := range v.same[s] {
		i, j := int(pr.i), int(pr.j)
		d := v.Box.MinImage(pos[i].Sub(pos[j]))
		r2 := d.Norm2()
		if r2 > rc2 {
			continue
		}
		p.pairs++
		eC, eLJ, fr := pairEval(q[i]*q[j], lj, i, j, alpha, r2)
		p.eCoul += eC
		p.eLJ += eLJ
		if f != nil && fr != 0 {
			fv := d.Scale(fr)
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
		}
	}
	base := s * v.ns
	for tgt := 0; tgt < v.ns; tgt++ {
		if tgt == s {
			continue
		}
		b := base + tgt
		prs := v.cross[b]
		dst := v.dfrc[b]
		for k, pr := range prs {
			var fv vec.V
			i, j := int(pr.i), int(pr.j)
			d := v.Box.MinImage(pos[i].Sub(pos[j]))
			r2 := d.Norm2()
			if r2 <= rc2 {
				p.pairs++
				eC, eLJ, fr := pairEval(q[i]*q[j], lj, i, j, alpha, r2)
				p.eCoul += eC
				p.eLJ += eLJ
				if f != nil && fr != 0 {
					fv = d.Scale(fr)
					f[i] = f[i].Add(fv)
				}
			}
			dst[k] = fv
		}
	}
}

// applyDeferred applies the reaction forces owed to target slabs
// [mlo, mhi) in ascending source-slab order.
//
//tme:noalloc
func (v *VerletList) applyDeferred(f []vec.V, mlo, mhi int) {
	ns := v.ns
	for m := mlo; m < mhi; m++ {
		for src := 0; src < ns; src++ {
			if src == m {
				continue
			}
			b := src*ns + m
			prs := v.cross[b]
			fr := v.dfrc[b]
			for k := range prs {
				f[prs[k].j] = f[prs[k].j].Sub(fr[k])
			}
		}
	}
}
