package nonbond

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/topol"
	"tme4a/internal/vec"
)

func TestVerletMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q, lj := randomSystem(rng, 150, box)
	excl := topol.NewExclusions(len(pos))
	for g := 0; g+2 < len(pos); g += 3 {
		excl.AddGroup([]int{g, g + 1, g + 2})
	}
	v := NewVerletList(box, 1.1, 0.2)
	v.Rebuild(pos, excl)

	f1 := make([]vec.V, len(pos))
	f2 := make([]vec.V, len(pos))
	r1 := v.Compute(pos, q, lj, 2.5, f1)
	r2 := Compute(box, pos, q, lj, 2.5, 1.1, excl, f2)
	if r1.Pairs != r2.Pairs {
		t.Fatalf("pair counts %d vs %d", r1.Pairs, r2.Pairs)
	}
	if math.Abs(r1.ECoul-r2.ECoul) > 1e-9*math.Abs(r2.ECoul) {
		t.Errorf("ECoul %g vs %g", r1.ECoul, r2.ECoul)
	}
	for i := range f1 {
		if f1[i].Sub(f2[i]).Norm() > 1e-9*math.Max(1, f2[i].Norm()) {
			t.Fatalf("force %d mismatch", i)
		}
	}
}

func TestVerletValidAfterSmallMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(4)
	pos, q, lj := randomSystem(rng, 200, box)
	excl := topol.NewExclusions(len(pos))
	v := NewVerletList(box, 1.0, 0.3)
	v.Rebuild(pos, excl)

	// Move every atom by less than skin/2 = 0.15 nm.
	for i := range pos {
		pos[i] = pos[i].Add(vec.V{rng.NormFloat64() * 0.03, rng.NormFloat64() * 0.03, rng.NormFloat64() * 0.03})
	}
	if v.NeedsRebuild(pos) {
		t.Fatal("list should still be valid after sub-skin moves")
	}
	// Buffered list result equals a fresh computation at the new positions.
	f1 := make([]vec.V, len(pos))
	f2 := make([]vec.V, len(pos))
	r1 := v.Compute(pos, q, lj, 2.2, f1)
	r2 := Compute(box, pos, q, lj, 2.2, 1.0, excl, f2)
	if r1.Pairs != r2.Pairs {
		t.Fatalf("pair counts %d vs %d after moves", r1.Pairs, r2.Pairs)
	}
	for i := range f1 {
		if f1[i].Sub(f2[i]).Norm() > 1e-9*math.Max(1, f2[i].Norm()) {
			t.Fatalf("force %d mismatch after moves", i)
		}
	}
}

func TestVerletDetectsLargeMove(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(4)
	pos, _, _ := randomSystem(rng, 50, box)
	v := NewVerletList(box, 1.0, 0.2)
	v.Rebuild(pos, topol.NewExclusions(len(pos)))
	pos[7] = pos[7].Add(vec.V{0.2, 0, 0}) // > skin/2
	if !v.NeedsRebuild(pos) {
		t.Error("large displacement not detected")
	}
}

func TestVerletBufferContainsCutoffPairs(t *testing.T) {
	// The buffered list must contain strictly more candidates than the
	// in-range pairs (skin > 0).
	rng := rand.New(rand.NewSource(4))
	box := vec.Cubic(4)
	pos, q, lj := randomSystem(rng, 200, box)
	excl := topol.NewExclusions(len(pos))
	v := NewVerletList(box, 1.0, 0.3)
	v.Rebuild(pos, excl)
	res := v.Compute(pos, q, lj, 2.2, nil)
	if v.NPairs() <= res.Pairs {
		t.Errorf("buffered pairs %d should exceed in-range pairs %d", v.NPairs(), res.Pairs)
	}
}

func BenchmarkVerletCompute(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(5)
	pos, q, lj := randomSystem(rng, 1500, box)
	excl := topol.NewExclusions(len(pos))
	v := NewVerletList(box, 1.0, 0.2)
	v.Rebuild(pos, excl)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Compute(pos, q, lj, 2.3, f)
	}
}
