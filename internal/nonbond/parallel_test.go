package nonbond

// Serial-vs-parallel bitwise equivalence of the short-range engine. The
// slab decomposition fixes every accumulation order independently of the
// worker count (owner-only writes + deferred cross-slab pass + slab-ordered
// partial reduction), so energies, forces and the pair list itself must be
// bitwise identical at any GOMAXPROCS.

import (
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/celllist"
	"tme4a/internal/topol"
	"tme4a/internal/vec"
)

var gomaxprocsLevels = []int{1, 2, 7, 16}

func withGOMAXPROCS(p int, fn func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	fn()
}

// nameSeed derives a deterministic RNG seed from the test name, so a
// failure reproduces by re-running the same test.
func nameSeed(t *testing.T) int64 {
	h := fnv.New64a()
	h.Write([]byte(t.Name()))
	return int64(h.Sum64() & math.MaxInt64)
}

func testExclusions(n int) *topol.Exclusions {
	excl := topol.NewExclusions(n)
	for g := 0; g+2 < n; g += 3 {
		excl.AddGroup([]int{g, g + 1, g + 2})
	}
	return excl
}

func assertForcesBitwise(t *testing.T, name string, a, b []vec.V) {
	t.Helper()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: force %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func assertResultBitwise(t *testing.T, name string, a, b Result) {
	t.Helper()
	if a != b {
		t.Fatalf("%s: results differ: %+v vs %+v", name, a, b)
	}
}

func TestComputeWithListBitwiseAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(nameSeed(t)))
	for _, tc := range []struct {
		name string
		n    int
		box  vec.Box
	}{
		{"cells", 400, vec.Cubic(5)},
		{"direct", 180, vec.Cubic(2.2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pos, q, lj := randomSystem(rng, tc.n, tc.box)
			excl := testExclusions(tc.n)
			cl := celllist.Build(tc.box, 1.0, pos)
			var refF []vec.V
			var refR Result
			for li, p := range gomaxprocsLevels {
				f := make([]vec.V, tc.n)
				var r Result
				withGOMAXPROCS(p, func() {
					r = ComputeWithList(cl, tc.box, pos, q, lj, 2.5, excl, f)
				})
				if li == 0 {
					refF, refR = f, r
					continue
				}
				assertResultBitwise(t, tc.name, refR, r)
				assertForcesBitwise(t, tc.name, refF, f)
			}
		})
	}
}

func TestVerletBitwiseAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(nameSeed(t)))
	box := vec.Cubic(4.5)
	n := 450
	pos, q, lj := randomSystem(rng, n, box)
	excl := testExclusions(n)

	// The pair list itself must be identical at any worker count: same
	// buckets, same order.
	var refList *VerletList
	for li, p := range gomaxprocsLevels {
		v := NewVerletList(box, 1.0, 0.2)
		withGOMAXPROCS(p, func() { v.Rebuild(pos, excl) })
		if li == 0 {
			refList = v
			continue
		}
		if v.NPairs() != refList.NPairs() {
			t.Fatalf("GOMAXPROCS=%d: %d pairs, want %d", p, v.NPairs(), refList.NPairs())
		}
		for s := range refList.same {
			if len(v.same[s]) != len(refList.same[s]) {
				t.Fatalf("GOMAXPROCS=%d: slab %d same-bucket length differs", p, s)
			}
			for k := range refList.same[s] {
				if v.same[s][k] != refList.same[s][k] {
					t.Fatalf("GOMAXPROCS=%d: slab %d pair %d differs", p, s, k)
				}
			}
		}
		for b := range refList.cross {
			if len(v.cross[b]) != len(refList.cross[b]) {
				t.Fatalf("GOMAXPROCS=%d: cross bucket %d length differs", p, b)
			}
			for k := range refList.cross[b] {
				if v.cross[b][k] != refList.cross[b][k] {
					t.Fatalf("GOMAXPROCS=%d: cross bucket %d pair %d differs", p, b, k)
				}
			}
		}
	}

	// Compute over the buffered list after sub-skin moves, bitwise across
	// worker counts.
	moved := make([]vec.V, n)
	copy(moved, pos)
	for i := range moved {
		moved[i] = moved[i].Add(vec.V{rng.NormFloat64() * 0.02, rng.NormFloat64() * 0.02, rng.NormFloat64() * 0.02})
	}
	var refF []vec.V
	var refR Result
	for li, p := range gomaxprocsLevels {
		f := make([]vec.V, n)
		var r Result
		withGOMAXPROCS(p, func() {
			r = refList.Compute(moved, q, lj, 2.5, f)
		})
		if li == 0 {
			refF, refR = f, r
			continue
		}
		assertResultBitwise(t, "verlet", refR, r)
		assertForcesBitwise(t, "verlet", refF, f)
	}
}

// TestPropertyMatchesNaive drives the whole stack (cell list traversal,
// parallel ComputeWithList, buffered Verlet list) against the O(N²) naive
// evaluator on randomized boxes, including near-cutoff box lengths (cells
// exactly 3 wide) and direct-mode small boxes. The RNG is seeded from the
// test name so any failure reproduces exactly.
func TestPropertyMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(nameSeed(t)))
	const rc = 1.0
	const alpha = 2.5
	for trial := 0; trial < 12; trial++ {
		// Box lengths from just below 2·rc (deep direct mode) to 6·rc,
		// deliberately crossing the 3-cell threshold at 3·rc.
		L := rc * (2.0 + 4.0*rng.Float64())
		if trial%4 == 0 {
			// Near-cutoff edge: cells barely admit the 3×3×3 stencil.
			L = rc * (3.0 + 0.05*rng.Float64())
		}
		box := vec.Cubic(L)
		n := 60 + rng.Intn(200)
		pos, q, lj := randomSystem(rng, n, box)
		excl := testExclusions(n)

		fNaive := make([]vec.V, n)
		rNaive := naive(box, pos, q, lj, alpha, rc, excl, fNaive)

		fList := make([]vec.V, n)
		rList := Compute(box, pos, q, lj, alpha, rc, excl, fList)
		compareToNaive(t, "ComputeWithList", trial, L, n, rList, rNaive, fList, fNaive)

		v := NewVerletList(box, rc, 0.15)
		v.Rebuild(pos, excl)
		fV := make([]vec.V, n)
		rV := v.Compute(pos, q, lj, alpha, fV)
		compareToNaive(t, "VerletList", trial, L, n, rV, rNaive, fV, fNaive)
	}
}

func compareToNaive(t *testing.T, name string, trial int, L float64, n int, got, want Result, fGot, fWant []vec.V) {
	t.Helper()
	if got.Pairs != want.Pairs {
		t.Fatalf("%s trial %d (L=%.3f n=%d): %d pairs, naive %d", name, trial, L, n, got.Pairs, want.Pairs)
	}
	if math.Abs(got.ECoul-want.ECoul) > 1e-9*math.Max(1, math.Abs(want.ECoul)) {
		t.Errorf("%s trial %d (L=%.3f): ECoul %g vs %g", name, trial, L, got.ECoul, want.ECoul)
	}
	if math.Abs(got.ELJ-want.ELJ) > 1e-9*math.Max(1, math.Abs(want.ELJ)) {
		t.Errorf("%s trial %d (L=%.3f): ELJ %g vs %g", name, trial, L, got.ELJ, want.ELJ)
	}
	for i := range fGot {
		if fGot[i].Sub(fWant[i]).Norm() > 1e-8*math.Max(1, fWant[i].Norm()) {
			t.Fatalf("%s trial %d (L=%.3f): force %d: %v vs %v", name, trial, L, i, fGot[i], fWant[i])
		}
	}
}

// TestVerletAtomCountChange is the regression test for the stale-reference
// bug: NeedsRebuild must force a rebuild whenever the atom count changes
// (growing or shrinking), and Rebuild must resize every internal buffer so
// the next Compute matches the naive reference.
func TestVerletAtomCountChange(t *testing.T) {
	rng := rand.New(rand.NewSource(nameSeed(t)))
	box := vec.Cubic(4)
	v := NewVerletList(box, 1.0, 0.2)

	for _, n := range []int{150, 240, 90} {
		pos, q, lj := randomSystem(rng, n, box)
		excl := testExclusions(n)
		if !v.NeedsRebuild(pos) {
			t.Fatalf("n=%d: NeedsRebuild must report true after atom-count change", n)
		}
		v.Rebuild(pos, excl)
		if v.NeedsRebuild(pos) {
			t.Fatalf("n=%d: list stale immediately after Rebuild", n)
		}
		f := make([]vec.V, n)
		fN := make([]vec.V, n)
		r := v.Compute(pos, q, lj, 2.5, f)
		rN := naive(box, pos, q, lj, 2.5, 1.0, excl, fN)
		compareToNaive(t, "VerletList", n, box.L[0], n, r, rN, f, fN)
	}
}
