// Chunk-order replay of the exclusion-correction energy reduction for
// the rank-decomposed run mode (internal/rank).

package ewald

import "tme4a/internal/units"

// ReplayExclusionEnergy reconstructs ExclusionCorrection's energy from
// per-pair terms gathered by atom: terms[off[i]:off[i+1]] holds atom i's
// 0.5·q_i·q_j·erf(αr)/r values in neighbor-list order (zero for pairs
// the serial loop skips on a vanishing charge product). Each fixed
// exclChunk-atom chunk subtracts its members' terms into a chunk-local
// accumulator — skipping q_i == 0 atoms, as the serial gather does — and
// the chunk partials fold in ascending chunk order, exactly
// ExclusionCorrection's deterministic reduction. Subtracting a recorded
// zero is a bitwise no-op, and atoms past the exclusion table contribute
// empty ranges, so the result is bit-equal to the serial sum.
func ReplayExclusionEnergy(terms []float64, off []int32, q []float64) float64 {
	var energy float64
	n := len(q)
	for lo := 0; lo < n; lo += exclChunk {
		hi := lo + exclChunk
		if hi > n {
			hi = n
		}
		var pc float64
		for i := lo; i < hi; i++ {
			if q[i] == 0 {
				continue
			}
			for s := off[i]; s < off[i+1]; s++ {
				pc -= terms[s]
			}
		}
		energy += pc
	}
	return energy * units.Coulomb
}
