package ewald

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// neutralRandomSystem returns n charges with zero total charge.
func neutralRandomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	return pos, q
}

func totalEwald(box vec.Box, pos []vec.V, q []float64, excl *topol.Exclusions, alpha, rc float64, nc int, f []vec.V) float64 {
	e := RealSpace(box, pos, q, alpha, rc, excl, f)
	e += Reciprocal(box, pos, q, alpha, nc, f)
	e += SelfEnergy(q, alpha)
	e += ExclusionCorrection(box, pos, q, alpha, excl, f)
	return e
}

// TestMadelungNaCl reproduces the Madelung constant of rock salt
// (1.747564594...) from the 8-atom conventional cell.
func TestMadelungNaCl(t *testing.T) {
	const a = 1.0 // nm
	box := vec.Cubic(a)
	pos := []vec.V{
		{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5},
		{0.5, 0, 0}, {0, 0.5, 0}, {0, 0, 0.5}, {0.5, 0.5, 0.5},
	}
	q := []float64{1, 1, 1, 1, -1, -1, -1, -1}
	e, f := Reference(box, pos, q, nil, 1e-14)
	const madelung = 1.74756459463318
	want := -4 * madelung / (a / 2) * units.Coulomb
	if math.Abs(e-want) > 1e-8*math.Abs(want) {
		t.Errorf("cell energy %.12f, want %.12f", e, want)
	}
	// Forces vanish by symmetry at lattice sites.
	for i, fi := range f {
		if fi.Norm() > 1e-6 {
			t.Errorf("atom %d: force %v should vanish by symmetry", i, fi)
		}
	}
}

// TestAlphaIndependence: the total Ewald energy and forces must not depend
// on the splitting parameter (the defining identity of Ewald summation).
func TestAlphaIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.NewBox(3, 3.5, 4)
	pos, q := neutralRandomSystem(rng, 24, box)
	type result struct {
		e float64
		f []vec.V
	}
	var results []result
	for _, alpha := range []float64{2.9, 3.4, 4.0} {
		// Convergence: erfc(α·rc) and reciprocal factor both tiny.
		rc := 1.45 // < min(L)/2
		nc := int(math.Ceil(5.2 * alpha * 4 / math.Pi))
		f := make([]vec.V, len(pos))
		e := totalEwald(box, pos, q, nil, alpha, rc, nc, f)
		results = append(results, result{e, f})
	}
	for k := 1; k < len(results); k++ {
		if math.Abs(results[k].e-results[0].e) > 1e-6*math.Abs(results[0].e) {
			t.Errorf("energy depends on alpha: %.10f vs %.10f", results[k].e, results[0].e)
		}
		for i := range pos {
			d := results[k].f[i].Sub(results[0].f[i]).Norm()
			if d > 1e-5*math.Max(1, results[0].f[i].Norm()) {
				t.Errorf("force %d depends on alpha: %v vs %v", i, results[k].f[i], results[0].f[i])
			}
		}
	}
}

// TestAlphaIndependenceWithExclusions repeats the identity with excluded
// intramolecular pairs, validating the exclusion correction term.
func TestAlphaIndependenceWithExclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(3.2)
	pos, q := neutralRandomSystem(rng, 18, box)
	excl := topol.NewExclusions(len(pos))
	// Exclude triplets (0,1,2), (3,4,5), ... like rigid waters.
	for g := 0; g+2 < len(pos); g += 3 {
		excl.AddGroup([]int{g, g + 1, g + 2})
	}
	var e0 float64
	var f0 []vec.V
	for k, alpha := range []float64{2.8, 3.5} {
		rc := 1.55
		nc := int(math.Ceil(5.2 * alpha * 3.2 / math.Pi))
		f := make([]vec.V, len(pos))
		e := totalEwald(box, pos, q, excl, alpha, rc, nc, f)
		if k == 0 {
			e0, f0 = e, f
			continue
		}
		if math.Abs(e-e0) > 1e-6*math.Abs(e0) {
			t.Errorf("excluded energy depends on alpha: %.10f vs %.10f", e, e0)
		}
		for i := range pos {
			if f[i].Sub(f0[i]).Norm() > 1e-5*math.Max(1, f0[i].Norm()) {
				t.Errorf("excluded force %d depends on alpha", i)
			}
		}
	}
}

// TestForcesMatchEnergyGradient checks F = −∇E by central differences.
func TestForcesMatchEnergyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(3)
	pos, q := neutralRandomSystem(rng, 12, box)
	alpha, rc := 2.5, 1.4
	nc := 14
	f := make([]vec.V, len(pos))
	totalEwald(box, pos, q, nil, alpha, rc, nc, f)
	const h = 2e-6
	for _, i := range []int{0, 5, 11} {
		for axis := 0; axis < 3; axis++ {
			p0 := pos[i]
			pos[i][axis] = p0[axis] + h
			ep := totalEwald(box, pos, q, nil, alpha, rc, nc, nil)
			pos[i][axis] = p0[axis] - h
			em := totalEwald(box, pos, q, nil, alpha, rc, nc, nil)
			pos[i] = p0
			fd := -(ep - em) / (2 * h)
			if math.Abs(f[i][axis]-fd) > 2e-4*math.Max(1, math.Abs(fd)) {
				t.Errorf("atom %d axis %d: force %.8f, −dE/dx %.8f", i, axis, f[i][axis], fd)
			}
		}
	}
}

// TestForcesMatchEnergyGradientWithExclusions repeats the gradient identity
// including exclusion corrections.
func TestForcesMatchEnergyGradientWithExclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	box := vec.Cubic(3)
	pos, q := neutralRandomSystem(rng, 9, box)
	excl := topol.NewExclusions(len(pos))
	excl.AddGroup([]int{0, 1, 2})
	excl.AddGroup([]int{3, 4})
	alpha, rc := 2.5, 1.4
	nc := 14
	f := make([]vec.V, len(pos))
	totalEwald(box, pos, q, excl, alpha, rc, nc, f)
	const h = 2e-6
	for _, i := range []int{0, 1, 4, 8} {
		for axis := 0; axis < 3; axis++ {
			p0 := pos[i]
			pos[i][axis] = p0[axis] + h
			ep := totalEwald(box, pos, q, excl, alpha, rc, nc, nil)
			pos[i][axis] = p0[axis] - h
			em := totalEwald(box, pos, q, excl, alpha, rc, nc, nil)
			pos[i] = p0
			fd := -(ep - em) / (2 * h)
			if math.Abs(f[i][axis]-fd) > 2e-4*math.Max(1, math.Abs(fd)) {
				t.Errorf("atom %d axis %d: force %.8f, −dE/dx %.8f", i, axis, f[i][axis], fd)
			}
		}
	}
}

// TestNewtonThirdLaw: total force must vanish for the real-space and
// correction terms, and to summation accuracy for the reciprocal term.
func TestNewtonThirdLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := vec.Cubic(3.5)
	pos, q := neutralRandomSystem(rng, 40, box)
	_, f := Reference(box, pos, q, nil, 1e-12)
	var tot vec.V
	for _, fi := range f {
		tot = tot.Add(fi)
	}
	if tot.Norm() > 1e-7 {
		t.Errorf("net force %v, want ~0", tot)
	}
}

// TestTwoChargeEnergySign: opposite charges attract.
func TestTwoChargeEnergySign(t *testing.T) {
	box := vec.Cubic(10)
	pos := []vec.V{{5, 5, 5}, {5.5, 5, 5}}
	q := []float64{1, -1}
	e, f := Reference(box, pos, q, nil, 1e-12)
	// Dominated by the direct pair: E ≈ −ke/0.5 (periodic images correct
	// at the ~1% level in a 10 nm box).
	want := -units.Coulomb / 0.5
	if math.Abs(e-want) > 0.02*math.Abs(want) {
		t.Errorf("pair energy %g, want ≈ %g", e, want)
	}
	// Attraction: force on atom 0 points toward atom 1 (+x).
	if f[0][0] <= 0 || f[1][0] >= 0 {
		t.Errorf("forces not attractive: %v %v", f[0], f[1])
	}
}

// TestChooseParamsErrorFactors confirms the Kolafa–Perram factors are met.
func TestChooseParamsErrorFactors(t *testing.T) {
	box := vec.NewBox(4, 5, 6)
	p := ChooseParams(box, 1e-12, 0.5)
	if rf := math.Exp(-p.Alpha * p.Alpha * p.Rc * p.Rc); rf > 1e-12 {
		t.Errorf("real-space factor %g", rf)
	}
	arg := math.Pi * float64(p.Nc) / (p.Alpha * 6) // worst axis: longest L
	if kf := math.Exp(-arg * arg); kf > 1e-12 {
		t.Errorf("reciprocal factor %g", kf)
	}
}

// TestExclusionRemovesPairInteraction: for one excluded pair very close
// together, the energy must not blow up like 1/r.
func TestExclusionRemovesPairInteraction(t *testing.T) {
	box := vec.Cubic(6)
	pos := []vec.V{{3, 3, 3}, {3.001, 3, 3}, {1, 1, 1}, {5, 5, 5}}
	q := []float64{1, -1, 1, -1}
	excl := topol.NewExclusions(4)
	excl.Add(0, 1)
	e, _ := Reference(box, pos, q, excl, 1e-12)
	// Without the exclusion this would be ≈ −138935 kJ/mol from the
	// 0.001 nm pair; with it the energy stays modest.
	if math.Abs(e) > 1000 {
		t.Errorf("excluded close pair leaked into energy: %g", e)
	}
}

func BenchmarkReciprocalN100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(4)
	pos, q := neutralRandomSystem(rng, 100, box)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reciprocal(box, pos, q, 2.5, 12, f)
	}
}

func BenchmarkRealSpaceN1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(5)
	pos, q := neutralRandomSystem(rng, 1000, box)
	f := make([]vec.V, len(pos))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RealSpace(box, pos, q, 2.5, 1.2, nil, f)
	}
}

// TestReferenceShortCutoffBranch validates the parameter set used for
// large systems (r_c = L/3 with a cell list and a larger reciprocal
// cutoff): it must give the same energies and forces as the r_c = L/2
// direct path, since the total Ewald sum is parameter-independent.
func TestReferenceShortCutoffBranch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	box := vec.Cubic(3.6)
	pos, q := neutralRandomSystem(rng, 40, box)

	run := func(rcFrac float64) (float64, []vec.V) {
		p := ChooseParams(box, 1e-12, rcFrac)
		f := make([]vec.V, len(pos))
		e := RealSpace(box, pos, q, p.Alpha, p.Rc, nil, f)
		e += Reciprocal(box, pos, q, p.Alpha, p.Nc, f)
		e += SelfEnergy(q, p.Alpha)
		return e, f
	}
	eHalf, fHalf := run(0.5)
	eThird, fThird := run(1.0 / 3.0)
	if math.Abs(eHalf-eThird) > 1e-7*math.Abs(eHalf) {
		t.Errorf("energies differ between cutoff branches: %.10f vs %.10f", eHalf, eThird)
	}
	for i := range fHalf {
		if fHalf[i].Sub(fThird[i]).Norm() > 1e-6*math.Max(1, fHalf[i].Norm()) {
			t.Fatalf("force %d differs between branches: %v vs %v", i, fHalf[i], fThird[i])
		}
	}
}
