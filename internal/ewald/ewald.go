// Package ewald implements the classical Ewald summation: real-space erfc
// sum, reciprocal-space lattice sum, self energy and exclusion corrections.
//
// It provides the double-precision reference Coulomb forces against which
// SPME and TME are measured (paper Table 1): the reference uses r_c = L/2
// (or a cell-listed shorter cutoff for large systems) and a reciprocal
// cutoff n_c chosen so both theoretical error factors (Kolafa & Perram) are
// below a target tolerance.
//
// All energies include the electric conversion factor units.Coulomb, so
// they are in kJ/mol for charges in e and lengths in nm.
package ewald

import (
	"math"
	"sync"

	"tme4a/internal/celllist"
	"tme4a/internal/par"
	"tme4a/internal/topol"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// TwoOverSqrtPi is 2/√π, the prefactor of the Gaussian term in Ewald
// derivatives.
const TwoOverSqrtPi = 2 / 1.7724538509055160273

// RealSpace computes the short-range Ewald part
// E = Σ_{i<j} q_i q_j erfc(α r)/r for non-excluded minimum-image pairs with
// r ≤ rc, accumulating forces into f (may be nil). A cell list is used when
// the box admits one.
func RealSpace(box vec.Box, pos []vec.V, q []float64, alpha, rc float64, excl *topol.Exclusions, f []vec.V) float64 {
	cl := celllist.Build(box, rc, pos)
	var energy float64
	cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) {
		if excl.Excluded(i, j) {
			return
		}
		qq := q[i] * q[j]
		if qq == 0 {
			return
		}
		r := math.Sqrt(r2)
		e := math.Erfc(alpha*r) / r
		energy += qq * e
		if f != nil {
			// −d/dr[erfc(αr)/r] = erfc(αr)/r² + (2α/√π)e^{−α²r²}/r
			fr := qq * (e + alpha*TwoOverSqrtPi*math.Exp(-alpha*alpha*r2)) / r2 * units.Coulomb
			fv := d.Scale(fr)
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
		}
	})
	return energy * units.Coulomb
}

// SelfEnergy returns the Ewald self-interaction correction −(α/√π) Σ q_i².
func SelfEnergy(q []float64, alpha float64) float64 {
	var s float64
	for _, qi := range q {
		s += qi * qi
	}
	return -alpha / math.Sqrt(math.Pi) * s * units.Coulomb
}

// exclChunk is the fixed atom-chunk size of the parallel exclusion
// correction; chunk boundaries depend only on the atom count, never on
// GOMAXPROCS, so the reduction order (and the energy, bitwise) is
// identical at any worker count.
const exclChunk = 256

// ExclusionCorrection removes the reciprocal-space interaction of excluded
// pairs: E = −Σ_excl q_i q_j erf(α r)/r with minimum-image r, accumulating
// forces into f (may be nil).
//
// The sum is evaluated in gather form — each atom's worker walks the
// atom's full exclusion-neighbour list, accumulating only that atom's
// force and half of each pair energy — so fixed atom chunks can run in
// parallel with owner-only force writes and a deterministic chunked energy
// reduction. Since erf(αr)/r and the minimum image are exactly symmetric
// in i↔j, the two half-energies sum to the pair energy exactly.
func ExclusionCorrection(box vec.Box, pos []vec.V, q []float64, alpha float64, excl *topol.Exclusions, f []vec.V) float64 {
	if excl == nil {
		return 0
	}
	n := excl.NAtoms()
	if n > len(pos) {
		n = len(pos)
	}
	nchunks := (n + exclChunk - 1) / exclChunk
	if nchunks == 0 {
		return 0
	}
	var energy float64
	if par.WorkersGrain(nchunks, 1) == 1 {
		for c := 0; c < nchunks; c++ {
			energy += exclGatherChunk(box, pos, q, alpha, excl, f, c, n)
		}
	} else {
		partial := exclPartialPool.Get().(*[]float64)
		if cap(*partial) < nchunks {
			*partial = make([]float64, nchunks)
		}
		ps := (*partial)[:nchunks]
		par.ForRangeGrain(nchunks, 1, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				ps[c] = exclGatherChunk(box, pos, q, alpha, excl, f, c, n)
			}
		})
		for _, e := range ps {
			energy += e
		}
		exclPartialPool.Put(partial)
	}
	return energy * units.Coulomb
}

var exclPartialPool = sync.Pool{New: func() interface{} { return new([]float64) }}

// exclGatherChunk evaluates the exclusion correction gathered onto the
// atoms of chunk c, returning the chunk's (half-counted) energy.
func exclGatherChunk(box vec.Box, pos []vec.V, q []float64, alpha float64, excl *topol.Exclusions, f []vec.V, c, n int) float64 {
	lo, hi := c*exclChunk, (c+1)*exclChunk
	if hi > n {
		hi = n
	}
	var energy float64
	for i := lo; i < hi; i++ {
		qi := q[i]
		if qi == 0 {
			continue
		}
		for _, j32 := range excl.Neighbors(i) {
			j := int(j32)
			qq := qi * q[j]
			if qq == 0 {
				continue
			}
			d := box.MinImage(pos[i].Sub(pos[j]))
			r2 := d.Norm2()
			r := math.Sqrt(r2)
			e := math.Erf(alpha*r) / r
			energy -= 0.5 * qq * e
			if f != nil {
				// Correction force: F_i = +q_i q_j d/dr[erf(αr)/r]·r̂.
				fr := qq * (alpha*TwoOverSqrtPi*math.Exp(-alpha*alpha*r2) - e) / r2 * units.Coulomb
				f[i] = f[i].Add(d.Scale(fr))
			}
		}
	}
	return energy
}

// Reciprocal computes the reciprocal-space Ewald sum over lattice vectors
// n with 0 < |n| ≤ nc:
//
//	E = (f/2πV) Σ_{n≠0} exp(−π²s²/α²)/s² |S(n)|²,  s_j = n_j/L_j,
//	S(n) = Σ_i q_i e^{2πi n·(r_i/L)},
//
// accumulating forces F_i = (4 f q_i/V) Σ_n A(n)·Im(S*·e_i)·s⃗ into f
// (which may be nil). The sum runs over a half space with a factor 2.
func Reciprocal(box vec.Box, pos []vec.V, q []float64, alpha float64, nc int, f []vec.V) float64 {
	n := len(pos)
	vol := box.Volume()
	ex := phaseTable(pos, 0, box.L[0], nc)
	ey := phaseTable(pos, 1, box.L[1], nc)
	ez := phaseTable(pos, 2, box.L[2], nc)

	scratch := make([]complex128, n)
	var energy float64
	nc2 := nc * nc
	for nx := 0; nx <= nc; nx++ {
		yLo := -nc
		if nx == 0 {
			yLo = 0
		}
		for ny := yLo; ny <= nc; ny++ {
			zLo := -nc
			if nx == 0 && ny == 0 {
				zLo = 1
			}
			for nz := zLo; nz <= nc; nz++ {
				if nx*nx+ny*ny+nz*nz > nc2 {
					continue
				}
				sx := float64(nx) / box.L[0]
				sy := float64(ny) / box.L[1]
				sz := float64(nz) / box.L[2]
				s2 := sx*sx + sy*sy + sz*sz
				a := math.Exp(-math.Pi*math.Pi*s2/(alpha*alpha)) / s2

				// Structure factor and per-atom phases.
				var sr, si float64
				for i := 0; i < n; i++ {
					ph := lookup(ex, i, nc, nx) * lookup(ey, i, nc, ny) * lookup(ez, i, nc, nz)
					scratch[i] = ph
					sr += q[i] * real(ph)
					si += q[i] * imag(ph)
				}
				energy += 2 * a * (sr*sr + si*si)
				if f != nil {
					pref := 4 * a / vol * units.Coulomb
					par.ForRange(n, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							ph := scratch[i]
							im := sr*imag(ph) - si*real(ph) // Im(S*·e_i)
							c := pref * q[i] * im
							f[i][0] += c * sx
							f[i][1] += c * sy
							f[i][2] += c * sz
						}
					})
				}
			}
		}
	}
	return energy / (2 * math.Pi * vol) * units.Coulomb
}

// phaseTable returns, flattened per atom, e^{2πi k r_axis/L} for k = 0..nc:
// entry [i*(nc+1)+k].
func phaseTable(pos []vec.V, axis int, l float64, nc int) []complex128 {
	n := len(pos)
	t := make([]complex128, n*(nc+1))
	par.ForRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			theta := 2 * math.Pi * pos[i][axis] / l
			w := complex(math.Cos(theta), math.Sin(theta))
			cur := complex(1, 0)
			base := i * (nc + 1)
			for k := 0; k <= nc; k++ {
				t[base+k] = cur
				cur *= w
			}
		}
	})
	return t
}

func lookup(t []complex128, i, nc, k int) complex128 {
	if k >= 0 {
		return t[i*(nc+1)+k]
	}
	v := t[i*(nc+1)-k]
	return complex(real(v), -imag(v))
}

// Params describes a converged reference Ewald configuration.
type Params struct {
	Alpha float64 // splitting parameter (nm⁻¹)
	Rc    float64 // real-space cutoff (nm)
	Nc    int     // reciprocal lattice cutoff |n| ≤ Nc
}

// ChooseParams picks α, r_c and n_c so that both Kolafa–Perram error
// factors, e^{−α²r_c²} (real space) and e^{−(πn_c/αL)²} (reciprocal space),
// are below tol. rcFrac sets r_c = rcFrac·min(L); the paper's reference uses
// rcFrac = 1/2.
func ChooseParams(box vec.Box, tol, rcFrac float64) Params {
	lmin := math.Min(box.L[0], math.Min(box.L[1], box.L[2]))
	lmax := math.Max(box.L[0], math.Max(box.L[1], box.L[2]))
	rc := rcFrac * lmin
	x := math.Sqrt(-math.Log(tol)) // e^{−x²} = tol
	alpha := x / rc
	nc := int(math.Ceil(x * alpha * lmax / math.Pi))
	return Params{Alpha: alpha, Rc: rc, Nc: nc}
}

// Reference computes reference Coulomb energies and forces by full Ewald
// summation with error factors below tol (e.g. 1e-12). For systems of up to
// maxDirect atoms it uses r_c = L/2; larger systems use r_c = L/3 with a
// cell list (and a correspondingly larger reciprocal cutoff). The returned
// forces are freshly allocated.
func Reference(box vec.Box, pos []vec.V, q []float64, excl *topol.Exclusions, tol float64) (energy float64, f []vec.V) {
	const maxDirect = 20000
	rcFrac := 0.5
	if len(pos) > maxDirect {
		rcFrac = 1.0 / 3.0
	}
	p := ChooseParams(box, tol, rcFrac)
	f = make([]vec.V, len(pos))
	energy = RealSpace(box, pos, q, p.Alpha, p.Rc, excl, f)
	energy += Reciprocal(box, pos, q, p.Alpha, p.Nc, f)
	energy += SelfEnergy(q, p.Alpha)
	energy += ExclusionCorrection(box, pos, q, p.Alpha, excl, f)
	return energy, f
}
