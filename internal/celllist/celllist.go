// Package celllist provides a linked-cell spatial decomposition for
// range-limited pair interactions under periodic boundary conditions.
//
// The same cell structure mirrors the MDGRAPE-4A spatial decomposition: the
// machine assigns rectangular cells of at most 64 atoms to nodes, and the
// nonbond pipelines enumerate half-shell cell pairs exactly as ForEachPair
// does here.
//
// Performance note: the periodic image shift of every cell pair is known
// from the stencil, so candidate pairs are tested with three subtractions
// and a compare — no per-pair minimum-image rounding.
//
// # Slab decomposition
//
// For parallel traversal the list partitions space into ownership slabs:
// one z-layer of cells per slab in cell mode, fixed contiguous atom blocks
// in direct mode. The half stencil is z-major — its cross-layer entries all
// point one layer up — so every pair enumerated from slab s involves only
// atoms owned by s and atoms owned by one "target" slab (s itself, the
// layer above, or a later atom block). ForEachPairInSlab reports that
// target, letting callers accumulate forces with exclusive slab ownership
// and defer the cross-slab half for a deterministic second pass (see
// nonbond.ComputeWithList).
package celllist

import (
	"tme4a/internal/obs"
	"tme4a/internal/vec"
)

// List is a linked-cell list over a periodic box.
type List struct {
	Box    vec.Box
	Cutoff float64
	// nc is the number of cells along each axis; at least 1.
	nc [3]int
	// head[c] is the first atom in cell c, next[i] the next atom after i,
	// −1 terminated.
	head []int32
	next []int32
	// wrapped holds box-wrapped copies of the build positions, used for
	// shift-based displacement computation.
	wrapped []vec.V
	n       int
	direct  bool // too few cells for the stencil; fall back to O(N²)
	// o, when non-nil, counts rebuilds. The cell list records no span of
	// its own: when it backs a Verlet list the rebuild time is attributed
	// to the neighbor stage by VerletList.Rebuild, and the unbuffered
	// force-field path wraps Rebuild in its own neighbor span.
	o *obs.Recorder
}

// SetObs attaches a stage recorder (nil detaches). Not safe to call
// concurrently with Rebuild.
func (l *List) SetObs(r *obs.Recorder) { l.o = r }

// New computes the cell decomposition for box and cutoff without binning
// any atoms; Rebuild must be called before traversal. Cells are at least
// cutoff wide, so all pairs within cutoff are found inside the 3×3×3
// stencil. If the box is too small for a 3-cell decomposition along every
// axis the list falls back to direct all-pairs enumeration.
func New(box vec.Box, cutoff float64) *List {
	l := &List{Box: box, Cutoff: cutoff}
	for j := 0; j < 3; j++ {
		l.nc[j] = int(box.L[j] / cutoff)
		if l.nc[j] < 1 {
			l.nc[j] = 1
		}
		// The division can round up past an integer (L/cutoff returned as
		// exactly k although L < k·cutoff), which would make cells
		// fractionally narrower than the cutoff and silently drop pairs at
		// r ≈ r_c outside the 3×3×3 stencil. Clamp until the invariant
		// L/nc ≥ cutoff holds in floating point.
		for l.nc[j] > 1 && box.L[j]/float64(l.nc[j]) < cutoff {
			l.nc[j]--
		}
	}
	if l.nc[0] < 3 || l.nc[1] < 3 || l.nc[2] < 3 {
		l.direct = true
		return l
	}
	l.head = make([]int32, l.nc[0]*l.nc[1]*l.nc[2])
	return l
}

// Build constructs a cell list for the positions (New + Rebuild).
func Build(box vec.Box, cutoff float64, pos []vec.V) *List {
	l := New(box, cutoff)
	l.Rebuild(pos)
	return l
}

// Rebuild re-bins the positions into the existing cell decomposition,
// reusing all internal storage (the atom count may change between calls).
// After warmup it allocates nothing.
func (l *List) Rebuild(pos []vec.V) {
	l.o.Add(obs.CounterCellRebuilds, 1)
	l.n = len(pos)
	if l.direct {
		return
	}
	if cap(l.next) < l.n {
		l.next = make([]int32, l.n)
		l.wrapped = make([]vec.V, l.n)
	}
	l.next = l.next[:l.n]
	l.wrapped = l.wrapped[:l.n]
	for i := range l.head {
		l.head[i] = -1
	}
	for i, r := range pos {
		w := l.Box.Wrap(r)
		l.wrapped[i] = w
		c := l.cellIndex(w)
		l.next[i] = l.head[c]
		l.head[c] = int32(i)
	}
}

func (l *List) cellIndex(r vec.V) int {
	var c [3]int
	for j := 0; j < 3; j++ {
		c[j] = int(r[j] / l.Box.L[j] * float64(l.nc[j]))
		if c[j] >= l.nc[j] {
			c[j] = l.nc[j] - 1
		}
		if c[j] < 0 {
			c[j] = 0
		}
	}
	return c[0] + l.nc[0]*(c[1]+l.nc[1]*c[2])
}

// NCells returns the cell counts per axis (1,1,1 in direct mode).
func (l *List) NCells() [3]int { return l.nc }

// Direct reports whether the list fell back to all-pairs enumeration.
func (l *List) Direct() bool { return l.direct }

// directBlock is the atom-block granularity of direct-mode slabs and
// maxDirectSlabs caps their number; both depend only on the atom count, so
// the slab structure (and hence any slab-ordered reduction) never depends
// on GOMAXPROCS.
const (
	directBlock    = 64
	maxDirectSlabs = 32
)

func directSlabs(n int) int {
	nb := (n + directBlock - 1) / directBlock
	if nb > maxDirectSlabs {
		nb = maxDirectSlabs
	}
	if nb < 1 {
		nb = 1
	}
	return nb
}

// Slabs returns the number of ownership slabs: the z-layer count in cell
// mode, a fixed atom-block count (≤ 32, depending only on the atom count)
// in direct mode.
func (l *List) Slabs() int {
	if l.direct {
		return directSlabs(l.n)
	}
	return l.nc[2]
}

// The half stencil is split z-major. inPlane is the half of the z = 0
// neighbours; together with i < j ordering inside the home cell it visits
// every in-layer pair exactly once. upPlane is the full 3×3 block one layer
// up. The union {inPlane, upPlane, home} with their negations tiles the
// 3×3×3 neighbourhood, so every pair within cutoff is enumerated exactly
// once, and every cross-layer pair is enumerated from the lower layer.
var inPlane = [4][2]int{
	{1, 0}, {-1, 1}, {0, 1}, {1, 1},
}

var upPlane = [9][2]int{
	{-1, -1}, {0, -1}, {1, -1},
	{-1, 0}, {0, 0}, {1, 0},
	{-1, 1}, {0, 1}, {1, 1},
}

// ForEachPair calls fn(i, j, d, r2) for every unordered pair (i, j) with
// minimum-image displacement d = r_i − r_j and squared distance r2 ≤
// cutoff². The pos slice must be the one passed to Build/Rebuild (it is
// only used in direct mode; cell mode uses the wrapped copies).
func (l *List) ForEachPair(pos []vec.V, fn func(i, j int, d vec.V, r2 float64)) {
	ns := l.Slabs()
	for s := 0; s < ns; s++ {
		l.ForEachPairInSlab(s, pos, func(i, j int, d vec.V, r2 float64, _ int) {
			fn(i, j, d, r2)
		})
	}
}

// ForEachPairInSlab enumerates the pairs whose first atom is owned by slab
// s, calling fn(i, j, d, r2, tgt) where tgt is the slab owning atom j.
// Atom i is always owned by s; tgt is either s (both atoms owned — the
// caller may update both force entries), the layer above in cell mode, or
// any later block in direct mode. Distinct slabs own disjoint atom sets,
// and the enumeration order within a slab is fixed, so concurrent
// traversal of different slabs with owner-only writes plus a deferred
// cross-slab pass is deterministic at any worker count.
func (l *List) ForEachPairInSlab(s int, pos []vec.V, fn func(i, j int, d vec.V, r2 float64, tgt int)) {
	rc2 := l.Cutoff * l.Cutoff
	if l.direct {
		nb := directSlabs(l.n)
		c := (l.n + nb - 1) / nb
		lo, hi := s*c, (s+1)*c
		if hi > l.n {
			hi = l.n
		}
		for i := lo; i < hi; i++ {
			for j := i + 1; j < l.n; j++ {
				d := l.Box.MinImage(pos[i].Sub(pos[j]))
				if r2 := d.Norm2(); r2 <= rc2 {
					fn(i, j, d, r2, j/c)
				}
			}
		}
		return
	}
	nx, ny, nz := l.nc[0], l.nc[1], l.nc[2]
	cz := s
	w := l.wrapped
	// The z-wrap of the layer above is constant across the whole slab.
	ozUp, szUp := wrapCell(cz+1, nz, l.Box.L[2])
	tgtUp := ozUp
	for cy := 0; cy < ny; cy++ {
		for cx := 0; cx < nx; cx++ {
			home := cx + nx*(cy+ny*cz)
			// Pairs within the home cell: never wrap.
			for i := l.head[home]; i >= 0; i = l.next[i] {
				wi := w[i]
				for j := l.next[i]; j >= 0; j = l.next[j] {
					dx := wi[0] - w[j][0]
					dy := wi[1] - w[j][1]
					dz := wi[2] - w[j][2]
					r2 := dx*dx + dy*dy + dz*dz
					if r2 <= rc2 {
						fn(int(i), int(j), vec.V{dx, dy, dz}, r2, s)
					}
				}
			}
			// In-layer half stencil: the image shift is fixed per cell pair.
			for _, st := range inPlane {
				ox, sx := wrapCell(cx+st[0], nx, l.Box.L[0])
				oy, sy := wrapCell(cy+st[1], ny, l.Box.L[1])
				other := ox + nx*(oy+ny*cz)
				for i := l.head[home]; i >= 0; i = l.next[i] {
					// Precompute r_i + shift so the inner loop is three
					// subtractions and a compare.
					px := w[i][0] + sx
					py := w[i][1] + sy
					pz := w[i][2]
					for j := l.head[other]; j >= 0; j = l.next[j] {
						dx := px - w[j][0]
						dy := py - w[j][1]
						dz := pz - w[j][2]
						r2 := dx*dx + dy*dy + dz*dz
						if r2 <= rc2 {
							fn(int(i), int(j), vec.V{dx, dy, dz}, r2, s)
						}
					}
				}
			}
			// Full 3×3 stencil one layer up: atom j is owned by tgtUp.
			for _, st := range upPlane {
				ox, sx := wrapCell(cx+st[0], nx, l.Box.L[0])
				oy, sy := wrapCell(cy+st[1], ny, l.Box.L[1])
				other := ox + nx*(oy+ny*ozUp)
				for i := l.head[home]; i >= 0; i = l.next[i] {
					px := w[i][0] + sx
					py := w[i][1] + sy
					pz := w[i][2] + szUp
					for j := l.head[other]; j >= 0; j = l.next[j] {
						dx := px - w[j][0]
						dy := py - w[j][1]
						dz := pz - w[j][2]
						r2 := dx*dx + dy*dy + dz*dz
						if r2 <= rc2 {
							fn(int(i), int(j), vec.V{dx, dy, dz}, r2, tgtUp)
						}
					}
				}
			}
		}
	}
}

// wrapCell maps a possibly out-of-range cell index into the box and
// returns the position shift that must be ADDED to home-cell atom
// coordinates so that differences against atoms of the wrapped cell give
// the nearest-image displacement.
func wrapCell(c, n int, boxL float64) (int, float64) {
	if c < 0 {
		// The neighbour's atoms sit near the far edge; their nearest image
		// is one box length below, i.e. home coordinates shift up by +L.
		return c + n, +boxL
	}
	if c >= n {
		return c - n, -boxL
	}
	return c, 0
}
