// Package celllist provides a linked-cell spatial decomposition for
// range-limited pair interactions under periodic boundary conditions.
//
// The same cell structure mirrors the MDGRAPE-4A spatial decomposition: the
// machine assigns rectangular cells of at most 64 atoms to nodes, and the
// nonbond pipelines enumerate half-shell cell pairs exactly as ForEachPair
// does here.
//
// Performance note: the periodic image shift of every cell pair is known
// from the stencil, so candidate pairs are tested with three subtractions
// and a compare — no per-pair minimum-image rounding.
package celllist

import (
	"tme4a/internal/vec"
)

// List is a linked-cell list over a periodic box.
type List struct {
	Box    vec.Box
	Cutoff float64
	// nc is the number of cells along each axis; at least 1.
	nc [3]int
	// head[c] is the first atom in cell c, next[i] the next atom after i,
	// −1 terminated.
	head []int32
	next []int32
	// wrapped holds box-wrapped copies of the build positions, used for
	// shift-based displacement computation.
	wrapped []vec.V
	n       int
	direct  bool // too few cells for the stencil; fall back to O(N²)
}

// Build constructs a cell list for the positions. Cells are at least cutoff
// wide, so all pairs within cutoff are found inside the 3×3×3 stencil. If
// the box is too small for a 3-cell decomposition along every axis the list
// falls back to direct all-pairs enumeration.
func Build(box vec.Box, cutoff float64, pos []vec.V) *List {
	l := &List{Box: box, Cutoff: cutoff, n: len(pos)}
	for j := 0; j < 3; j++ {
		l.nc[j] = int(box.L[j] / cutoff)
		if l.nc[j] < 1 {
			l.nc[j] = 1
		}
		// The division can round up past an integer (L/cutoff returned as
		// exactly k although L < k·cutoff), which would make cells
		// fractionally narrower than the cutoff and silently drop pairs at
		// r ≈ r_c outside the 3×3×3 stencil. Clamp until the invariant
		// L/nc ≥ cutoff holds in floating point.
		for l.nc[j] > 1 && box.L[j]/float64(l.nc[j]) < cutoff {
			l.nc[j]--
		}
	}
	if l.nc[0] < 3 || l.nc[1] < 3 || l.nc[2] < 3 {
		l.direct = true
		return l
	}
	ncells := l.nc[0] * l.nc[1] * l.nc[2]
	l.head = make([]int32, ncells)
	for i := range l.head {
		l.head[i] = -1
	}
	l.next = make([]int32, len(pos))
	l.wrapped = make([]vec.V, len(pos))
	for i, r := range pos {
		w := box.Wrap(r)
		l.wrapped[i] = w
		c := l.cellIndex(w)
		l.next[i] = l.head[c]
		l.head[c] = int32(i)
	}
	return l
}

func (l *List) cellIndex(r vec.V) int {
	var c [3]int
	for j := 0; j < 3; j++ {
		c[j] = int(r[j] / l.Box.L[j] * float64(l.nc[j]))
		if c[j] >= l.nc[j] {
			c[j] = l.nc[j] - 1
		}
		if c[j] < 0 {
			c[j] = 0
		}
	}
	return c[0] + l.nc[0]*(c[1]+l.nc[1]*c[2])
}

// NCells returns the cell counts per axis (1,1,1 in direct mode).
func (l *List) NCells() [3]int { return l.nc }

// Direct reports whether the list fell back to all-pairs enumeration.
func (l *List) Direct() bool { return l.direct }

// halfStencil is the 13-cell half stencil; together with i<j ordering
// inside the home cell this visits every pair exactly once.
var halfStencil = [13][3]int{
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
	{0, 1, 1}, {0, 1, -1},
	{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
}

// ForEachPair calls fn(i, j, d, r2) for every unordered pair (i, j) with
// minimum-image displacement d = r_i − r_j and squared distance r2 ≤
// cutoff². The pos slice must be the one passed to Build (it is only used
// in direct mode; cell mode uses the wrapped copies).
func (l *List) ForEachPair(pos []vec.V, fn func(i, j int, d vec.V, r2 float64)) {
	rc2 := l.Cutoff * l.Cutoff
	if l.direct {
		for i := 0; i < l.n; i++ {
			for j := i + 1; j < l.n; j++ {
				d := l.Box.MinImage(pos[i].Sub(pos[j]))
				if r2 := d.Norm2(); r2 <= rc2 {
					fn(i, j, d, r2)
				}
			}
		}
		return
	}
	nx, ny, nz := l.nc[0], l.nc[1], l.nc[2]
	w := l.wrapped
	for cz := 0; cz < nz; cz++ {
		for cy := 0; cy < ny; cy++ {
			for cx := 0; cx < nx; cx++ {
				home := cx + nx*(cy+ny*cz)
				// Pairs within the home cell: never wrap.
				for i := l.head[home]; i >= 0; i = l.next[i] {
					wi := w[i]
					for j := l.next[i]; j >= 0; j = l.next[j] {
						dx := wi[0] - w[j][0]
						dy := wi[1] - w[j][1]
						dz := wi[2] - w[j][2]
						r2 := dx*dx + dy*dy + dz*dz
						if r2 <= rc2 {
							fn(int(i), int(j), vec.V{dx, dy, dz}, r2)
						}
					}
				}
				// Pairs with the half stencil: the image shift is fixed
				// per cell pair.
				for _, s := range halfStencil {
					ox, sx := wrapCell(cx+s[0], nx, l.Box.L[0])
					oy, sy := wrapCell(cy+s[1], ny, l.Box.L[1])
					oz, sz := wrapCell(cz+s[2], nz, l.Box.L[2])
					other := ox + nx*(oy+ny*oz)
					for i := l.head[home]; i >= 0; i = l.next[i] {
						// Precompute r_i + shift so the inner loop is three
						// subtractions and a compare.
						px := w[i][0] + sx
						py := w[i][1] + sy
						pz := w[i][2] + sz
						for j := l.head[other]; j >= 0; j = l.next[j] {
							dx := px - w[j][0]
							dy := py - w[j][1]
							dz := pz - w[j][2]
							r2 := dx*dx + dy*dy + dz*dz
							if r2 <= rc2 {
								fn(int(i), int(j), vec.V{dx, dy, dz}, r2)
							}
						}
					}
				}
			}
		}
	}
}

// wrapCell maps a possibly out-of-range cell index into the box and
// returns the position shift that must be ADDED to home-cell atom
// coordinates so that differences against atoms of the wrapped cell give
// the nearest-image displacement.
func wrapCell(c, n int, boxL float64) (int, float64) {
	if c < 0 {
		// The neighbour's atoms sit near the far edge; their nearest image
		// is one box length below, i.e. home coordinates shift up by +L.
		return c + n, +boxL
	}
	if c >= n {
		return c - n, -boxL
	}
	return c, 0
}
