package celllist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"tme4a/internal/vec"
)

func randomPositions(rng *rand.Rand, n int, box vec.Box) []vec.V {
	pos := make([]vec.V, n)
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
	}
	return pos
}

func brutePairs(box vec.Box, pos []vec.V, rc float64) map[string]bool {
	out := map[string]bool{}
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			d := box.MinImage(pos[i].Sub(pos[j]))
			if d.Norm2() <= rc*rc {
				out[key(i, j)] = true
			}
		}
	}
	return out
}

func key(i, j int) string {
	if i > j {
		i, j = j, i
	}
	return fmt.Sprintf("%d-%d", i, j)
}

func TestPairsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n   int
		box vec.Box
		rc  float64
	}{
		{100, vec.Cubic(5), 1.0},  // many cells
		{80, vec.Cubic(3.2), 1.0}, // exactly 3 cells per axis
		{50, vec.Cubic(2.0), 1.0}, // too few cells: direct fallback
		{60, vec.NewBox(6, 4, 3.5), 1.1},
	}
	for ci, c := range cases {
		pos := randomPositions(rng, c.n, c.box)
		want := brutePairs(c.box, pos, c.rc)
		got := map[string]bool{}
		var dup bool
		cl := Build(c.box, c.rc, pos)
		cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) {
			k := key(i, j)
			if got[k] {
				dup = true
			}
			got[k] = true
		})
		if dup {
			t.Errorf("case %d: duplicate pairs emitted", ci)
		}
		if len(got) != len(want) {
			t.Errorf("case %d: %d pairs, want %d (direct=%v)", ci, len(got), len(want), cl.Direct())
		}
		for k := range want {
			if !got[k] {
				t.Errorf("case %d: missing pair %s", ci, k)
			}
		}
	}
}

func TestDisplacementConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(6)
	pos := randomPositions(rng, 200, box)
	cl := Build(box, 1.2, pos)
	cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) {
		// Shift-based displacements agree with MinImage to rounding.
		want := box.MinImage(pos[i].Sub(pos[j]))
		if d.Sub(want).Norm() > 1e-12 {
			t.Fatalf("pair (%d,%d): displacement %v, want %v", i, j, d, want)
		}
		if math.Abs(r2-d.Norm2()) > 1e-12 {
			t.Fatalf("pair (%d,%d): r2 mismatch", i, j)
		}
	})
}

func TestEmptyAndSingle(t *testing.T) {
	box := vec.Cubic(5)
	for _, n := range []int{0, 1} {
		pos := make([]vec.V, n)
		cl := Build(box, 1, pos)
		count := 0
		cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) { count++ })
		if count != 0 {
			t.Errorf("n=%d: got %d pairs", n, count)
		}
	}
}

func TestWrappedPositionsOutsideBox(t *testing.T) {
	// Positions far outside the primary box must still be binned correctly.
	box := vec.Cubic(4)
	pos := []vec.V{vec.New(-3.9, 8.1, 0.5), vec.New(0.2, 0.2, 0.4)}
	cl := Build(box, 1.0, pos)
	found := 0
	cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) { found++ })
	if found != 1 {
		t.Errorf("found %d pairs, want 1", found)
	}
}

func TestStencilCoverage(t *testing.T) {
	// Every of the 26 neighbour offsets must be reachable exactly once by
	// the half stencil (in-plane half + full layer above) in either
	// direction.
	seen := map[[3]int]int{}
	for _, s := range inPlane {
		seen[[3]int{s[0], s[1], 0}]++
		seen[[3]int{-s[0], -s[1], 0}]++
	}
	for _, s := range upPlane {
		seen[[3]int{s[0], s[1], 1}]++
		seen[[3]int{-s[0], -s[1], -1}]++
	}
	if len(seen) != 26 {
		t.Fatalf("stencil covers %d offsets, want 26", len(seen))
	}
	var keys [][3]int
	for k, c := range seen {
		if c != 1 {
			t.Errorf("offset %v covered %d times", k, c)
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return fmt.Sprint(keys[a]) < fmt.Sprint(keys[b]) })
}

// TestCellWidthNeverBelowCutoff is the regression test for the nc rounding
// bug: with L = fl(5·cutoff) rounded down, the true ratio L/cutoff is just
// below 5 but the floating-point division returns exactly 5, so the old
// nc = int(L/cutoff) produced cells fractionally narrower than the cutoff
// and the 3×3×3 stencil could silently drop pairs at r ≈ r_c. Build must
// clamp nc so that L/nc ≥ cutoff holds in floating point.
func TestCellWidthNeverBelowCutoff(t *testing.T) {
	// Engineered rounding edge (see above): L < 5·cutoff exactly, yet
	// int(L/cutoff) == 5. Declared as variables so the division is IEEE
	// float64 (untyped constant arithmetic in Go is exact).
	cutoff := 0.90000000800000002
	L := 4.5000000399999998
	if int(L/cutoff) != 5 || L/5 >= cutoff {
		t.Fatalf("test box no longer hits the rounding edge: int(L/c)=%d, L/5-c=%g",
			int(L/cutoff), L/5-cutoff)
	}
	box := vec.NewBox(L, L, L)
	rng := rand.New(rand.NewSource(7))
	pos := randomPositions(rng, 200, box)
	cl := Build(box, cutoff, pos)
	nc := cl.NCells()
	for j := 0; j < 3; j++ {
		if w := box.L[j] / float64(nc[j]); w < cutoff {
			t.Errorf("axis %d: cell width %.17g below cutoff %.17g (nc=%d)", j, w, cutoff, nc[j])
		}
	}
	if nc[0] != 4 {
		t.Errorf("nc = %d, want clamp to 4", nc[0])
	}
	// With the invariant restored the stencil enumeration must agree with
	// brute force exactly.
	want := brutePairs(box, pos, cutoff)
	got := map[string]bool{}
	cl.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) {
		got[key(i, j)] = true
	})
	if len(got) != len(want) {
		t.Errorf("pair count mismatch: got %d want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing pair %s", k)
		}
	}
}
