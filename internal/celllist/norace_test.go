//go:build !race

package celllist

const raceEnabled = false
