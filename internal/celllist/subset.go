// Subset rebuild support for the rank-decomposed run mode (internal/rank).
//
// A rank owns a contiguous range of z-layers and receives, via position
// halos, exactly the atoms whose layer falls inside its window. Re-binning
// only those atoms — in ascending global index, the same order Rebuild
// walks — reproduces the full-list chain layout for every cell of the
// window: chains grow head-first, so inserting the same atoms in the same
// order yields identical chains, and ForEachPairInSlab enumerates the
// window's pairs in exactly the serial order.

package celllist

import "tme4a/internal/vec"

// Layer returns the z-slab (cell layer) that position r falls in,
// using the same wrap + cell-index arithmetic as Rebuild. Panics in
// direct mode, where slabs are atom blocks rather than layers.
//
//tme:noalloc
func (l *List) Layer(r vec.V) int {
	if l.direct {
		panic("celllist: Layer undefined in direct mode")
	}
	w := l.Box.Wrap(r)
	c := int(w[2] / l.Box.L[2] * float64(l.nc[2]))
	if c >= l.nc[2] {
		c = l.nc[2] - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// RebuildSubset re-bins only the atoms listed in idx (ascending global
// index) into the cell decomposition; every other cell chain is left
// empty. pos must be the full position array — idx entries index into it —
// so wrapped copies land at their global slots and pair callbacks report
// global atom indices. Cells all of whose atoms are listed end up with
// chains identical to a full Rebuild over the complete system.
// Panics in direct mode.
func (l *List) RebuildSubset(pos []vec.V, idx []int32) {
	if l.direct {
		panic("celllist: RebuildSubset unsupported in direct mode")
	}
	l.n = len(pos)
	if cap(l.next) < l.n {
		l.next = make([]int32, l.n)
		l.wrapped = make([]vec.V, l.n)
	}
	l.next = l.next[:l.n]
	l.wrapped = l.wrapped[:l.n]
	for i := range l.head {
		l.head[i] = -1
	}
	for _, i := range idx {
		w := l.Box.Wrap(pos[i])
		l.wrapped[i] = w
		c := l.cellIndex(w)
		l.next[i] = l.head[c]
		l.head[c] = i
	}
}
