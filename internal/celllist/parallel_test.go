package celllist

// Tests of the slab-ownership traversal that the parallel short-range
// engine builds on: slab coverage must equal the flat traversal, target
// slabs must respect the ownership contract, and Rebuild must reuse
// storage across atom-count changes.

import (
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/vec"
)

func pairSet(t *testing.T, fn func(emit func(i, j int))) map[[2]int]int {
	t.Helper()
	out := map[[2]int]int{}
	fn(func(i, j int) {
		if i > j {
			i, j = j, i
		}
		out[[2]int{i, j}]++
	})
	return out
}

// slabOf returns the slab owning atom i (recomputed from first principles
// for the test's own bookkeeping).
func slabOf(l *List, pos []vec.V, i int) int {
	if l.Direct() {
		nb := directSlabs(l.n)
		c := (l.n + nb - 1) / nb
		return i / c
	}
	w := l.Box.Wrap(pos[i])
	cz := int(w[2] / l.Box.L[2] * float64(l.nc[2]))
	if cz >= l.nc[2] {
		cz = l.nc[2] - 1
	}
	if cz < 0 {
		cz = 0
	}
	return cz
}

func TestSlabTraversalMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		n    int
		box  vec.Box
		rc   float64
	}{
		{"cells", 300, vec.Cubic(5), 1.0},
		{"threecells", 120, vec.Cubic(3.1), 1.0},
		{"direct", 150, vec.Cubic(2.0), 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pos := randomPositions(rng, tc.n, tc.box)
			l := Build(tc.box, tc.rc, pos)
			flat := pairSet(t, func(emit func(i, j int)) {
				l.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) { emit(i, j) })
			})
			slabbed := pairSet(t, func(emit func(i, j int)) {
				for s := 0; s < l.Slabs(); s++ {
					l.ForEachPairInSlab(s, pos, func(i, j int, d vec.V, r2 float64, tgt int) {
						// Ownership contract: i is owned by s, j by tgt.
						if got := slabOf(l, pos, i); got != s {
							t.Fatalf("atom %d reported from slab %d but owned by %d", i, s, got)
						}
						if got := slabOf(l, pos, j); got != tgt {
							t.Fatalf("atom %d reported with target %d but owned by %d", j, tgt, got)
						}
						if !l.Direct() && tgt != s {
							up := (s + 1) % l.nc[2]
							if tgt != up {
								t.Fatalf("cell-mode cross-slab target %d from slab %d, want %d", tgt, s, up)
							}
						}
						emit(i, j)
					})
				}
			})
			if len(flat) != len(slabbed) {
				t.Fatalf("flat %d pairs, slabbed %d", len(flat), len(slabbed))
			}
			for k, c := range flat {
				if c != 1 {
					t.Errorf("pair %v seen %d times in flat traversal", k, c)
				}
				if slabbed[k] != 1 {
					t.Errorf("pair %v seen %d times in slab traversal", k, slabbed[k])
				}
			}
		})
	}
}

func TestRebuildReusesAcrossAtomCountChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	box := vec.Cubic(5)
	l := New(box, 1.0)
	for _, n := range []int{200, 350, 120, 350} {
		pos := randomPositions(rng, n, box)
		l.Rebuild(pos)
		fresh := Build(box, 1.0, pos)
		got := pairSet(t, func(emit func(i, j int)) {
			l.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) { emit(i, j) })
		})
		want := pairSet(t, func(emit func(i, j int)) {
			fresh.ForEachPair(pos, func(i, j int, d vec.V, r2 float64) { emit(i, j) })
		})
		if len(got) != len(want) {
			t.Fatalf("n=%d: reused list found %d pairs, fresh %d", n, len(got), len(want))
		}
		for k := range want {
			if got[k] != 1 {
				t.Fatalf("n=%d: pair %v missing from reused list", n, k)
			}
		}
	}
}

func TestRebuildSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	rng := rand.New(rand.NewSource(11))
	box := vec.Cubic(5)
	pos := randomPositions(rng, 400, box)
	l := New(box, 1.0)
	l.Rebuild(pos)
	allocs := testing.AllocsPerRun(10, func() {
		l.Rebuild(pos)
	})
	if allocs != 0 {
		t.Errorf("Rebuild allocates %.1f objects in steady state, want 0", allocs)
	}
}
