package dist

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
)

func randomSystem(rng *rand.Rand, n int, box vec.Box) ([]vec.V, []float64) {
	pos := make([]vec.V, n)
	q := make([]float64, n)
	var qt float64
	for i := range pos {
		pos[i] = vec.New(rng.Float64()*box.L[0], rng.Float64()*box.L[1], rng.Float64()*box.L[2])
		q[i] = rng.NormFloat64()
		qt += q[i]
	}
	for i := range q {
		q[i] -= qt / float64(n)
	}
	return pos, q
}

// TestDistributedMatchesGlobal is the central claim: the block-decomposed
// execution with sleeve folds, per-axis ±g_c halo exchanges and a gathered
// top level reproduces the global TME to round-off — the executable form
// of the paper's communication-scheme argument.
func TestDistributedMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := vec.Cubic(9.9727)
	pos, q := randomSystem(rng, 300, box)
	prm := core.Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6,
		N: [3]int{32, 32, 32}, Levels: 1, M: 3, Gc: 8,
	}
	tme := core.New(prm, box)
	d := New(tme, 2) // 2×2×2 nodes, 16³ local blocks

	fg := make([]vec.V, len(pos))
	eg := tme.LongRange(pos, q, fg)
	fd := make([]vec.V, len(pos))
	ed := d.LongRange(pos, q, fd)

	if math.Abs(ed-eg) > 1e-8*math.Abs(eg) {
		t.Errorf("energy: distributed %.12f vs global %.12f", ed, eg)
	}
	var fScale float64
	for _, fi := range fg {
		fScale = math.Max(fScale, fi.Norm())
	}
	for i := range fg {
		if d := fd[i].Sub(fg[i]).Norm(); d > 1e-9*fScale {
			t.Fatalf("atom %d: force %v vs %v (Δ %g)", i, fd[i], fg[i], d)
		}
	}
}

// TestDistributedFourNodesPerAxis uses a finer decomposition (4³ = 64
// nodes, 8³ local blocks with g_c-wide halos equal to the block side —
// the MDGRAPE-4A 32³-grid operating geometry has 4³ blocks; 8³ is the
// closest this single-hop implementation supports).
func TestDistributedFourNodesPerAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	box := vec.Cubic(9.9727)
	pos, q := randomSystem(rng, 200, box)
	prm := core.Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6,
		N: [3]int{32, 32, 32}, Levels: 1, M: 2, Gc: 8,
	}
	tme := core.New(prm, box)
	d := New(tme, 4) // 64 nodes, 8³ local
	fg := make([]vec.V, len(pos))
	tme.LongRange(pos, q, fg)
	fd := make([]vec.V, len(pos))
	d.LongRange(pos, q, fd)
	var fScale float64
	for _, fi := range fg {
		fScale = math.Max(fScale, fi.Norm())
	}
	for i := range fg {
		if dd := fd[i].Sub(fg[i]).Norm(); dd > 1e-9*fScale {
			t.Fatalf("atom %d: Δ %g", i, dd)
		}
	}
}

// TestDistributedTwoLevels covers L = 2 (the 64³ configuration's level
// structure, scaled).
func TestDistributedTwoLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := vec.Cubic(9.9727)
	pos, q := randomSystem(rng, 150, box)
	prm := core.Params{
		Alpha: spme.AlphaFromRTol(1.2, 1e-4), Rc: 1.2, Order: 6,
		N: [3]int{64, 64, 64}, Levels: 2, M: 2, Gc: 8,
	}
	tme := core.New(prm, box)
	d := New(tme, 2) // 32³ local finest, 16³ level-2, 16³ top gathered
	fg := make([]vec.V, len(pos))
	tme.LongRange(pos, q, fg)
	fd := make([]vec.V, len(pos))
	d.LongRange(pos, q, fd)
	var fScale float64
	for _, fi := range fg {
		fScale = math.Max(fScale, fi.Norm())
	}
	for i := range fg {
		if dd := fd[i].Sub(fg[i]).Norm(); dd > 1e-9*fScale {
			t.Fatalf("atom %d: Δ %g", i, dd)
		}
	}
}

func TestNewValidation(t *testing.T) {
	box := vec.Cubic(4)
	tme := core.New(core.Params{
		Alpha: 2.3, Rc: 1.2, Order: 6, N: [3]int{16, 16, 16},
		Levels: 1, M: 2, Gc: 8,
	}, box)
	// 16/4 = 4 < gc: must panic (would need multi-hop halos).
	defer func() {
		if recover() == nil {
			t.Error("expected panic for local side < gc")
		}
	}()
	New(tme, 4)
}
