package dist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/core"
	"tme4a/internal/vec"
)

// testSystem returns a reproducible cloud of charged particles, including
// positions outside the primary box (the mesher wraps them) and a few
// neutral atoms (skipped by assignment, interpolation and the energy
// replay).
func testSystem(seed int64, n int, box vec.Box) ([]vec.V, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V, n)
	q := make([]float64, n)
	for i := range pos {
		for k := 0; k < 3; k++ {
			pos[i][k] = (rng.Float64()*3 - 1) * box.L[k]
		}
		q[i] = rng.NormFloat64()
		if i%17 == 0 {
			q[i] = 0
		}
	}
	return pos, q
}

var testGeoms = []core.Params{
	{Alpha: 3.0, Rc: 0.45, Order: 4, N: [3]int{32, 32, 32}, Levels: 1, M: 2, Gc: 4},
	{Alpha: 2.5, Rc: 0.5, Order: 4, N: [3]int{32, 16, 32}, Levels: 2, M: 1, Gc: 3},
}

// TestLongRangeBitwise asserts the decomposed solver reproduces
// core.Solver.LongRange exactly — energy and every force component
// bit-for-bit — at every rank count that divides the hierarchy, on two
// geometries (single- and two-level, anisotropic grid). Each solver runs
// twice to cover the steady-state (reused scratch) path.
func TestLongRangeBitwise(t *testing.T) {
	for gi, prm := range testGeoms {
		box := vec.Cubic(1.86)
		ref := core.New(prm, box)
		pos, q := testSystem(int64(1000+gi), 321, box)
		fRef := make([]vec.V, len(pos))
		eRef := ref.LongRange(pos, q, fRef)
		for _, r := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("geom%d/R%d", gi, r), func(t *testing.T) {
				s, err := New(core.New(prm, box), r)
				if err != nil {
					t.Fatalf("New(R=%d): %v", r, err)
				}
				for pass := 0; pass < 2; pass++ {
					f := make([]vec.V, len(pos))
					e := s.LongRange(pos, q, f)
					if math.Float64bits(e) != math.Float64bits(eRef) {
						t.Fatalf("pass %d: energy %x != serial %x (Δ=%g)",
							pass, math.Float64bits(e), math.Float64bits(eRef), e-eRef)
					}
					for i := range f {
						for k := 0; k < 3; k++ {
							if math.Float64bits(f[i][k]) != math.Float64bits(fRef[i][k]) {
								t.Fatalf("pass %d: force[%d][%d] %g != serial %g", pass, i, k, f[i][k], fRef[i][k])
							}
						}
					}
				}
			})
		}
	}
}

// TestNewRejectsIndivisible: rank counts that do not divide every level's
// plane count must fail at plan time, not mid-solve.
func TestNewRejectsIndivisible(t *testing.T) {
	box := vec.Cubic(1.86)
	tme := core.New(testGeoms[0], box) // top grid 16 planes
	for _, r := range []int{3, 5, 32} {
		if _, err := New(tme, r); err == nil {
			t.Errorf("New(R=%d): expected divisibility error, got nil", r)
		}
	}
	if _, err := New(tme, 0); err == nil {
		t.Error("New(R=0): expected error, got nil")
	}
}

// TestHaloPlaneExchange drives a full pack/deliver/unpack/fill cycle on a
// field whose plane values encode the global plane id, asserting every
// extended-buffer slot of every rank ends up holding exactly the plane the
// window arithmetic demands — the partition property (no slot missed, no
// slot double-filled) on a concrete exchange rather than just the tables.
func TestHaloPlaneExchange(t *testing.T) {
	for _, tc := range []struct{ r, nz, lo, hi, pl int }{
		{1, 8, 3, 3, 5},
		{2, 8, 2, 1, 4},
		{4, 8, 4, 4, 3}, // window longer than own block
		{8, 8, 1, 9, 2}, // window longer than the ring
		{4, 16, 0, 3, 6},
	} {
		h, err := NewHalo(tc.r, tc.nz, tc.lo, tc.hi, tc.pl)
		if err != nil {
			t.Fatalf("NewHalo(%+v): %v", tc, err)
		}
		if err := CheckPartition(h); err != nil {
			t.Errorf("CheckPartition(%+v): %v", tc, err)
		}
	}
}
