// Plan (shared, immutable) and Mesh (per-rank grid state) for the
// decomposed TME pipeline. The stage sequence per mesh solve, mirroring
// core.Solver.meshPotentialFromCharges:
//
//	AssignOwn                       // finest charges, own planes
//	for k = 0..L−1:                 // downward pass
//	    RestrictXY(k) → exchange Restrict[k] → RestrictZ(k)
//	top: gather Q[L] planes to root, SPME, scatter into Phi[L]
//	for k = L−1..0:                 // upward pass
//	    ProlongXY(k) → exchange Prolong[k] → ProlongZ(k)
//	    for ν = 0..M−1:
//	        ConvXY(k,ν) → exchange Conv[k] → ConvZAccum(k,ν)
//	exchange Interp → Interp        // back interpolation, own atoms
//
// "exchange H" means: every rank packs its sleeves (Halo.Pack), delivers
// them (channels in internal/rank, direct copies in the sequential
// Solver), unpacks received sleeves (Halo.Unpack) and fills its own planes
// (Halo.FillOwn). The x/y passes run the exported per-axis line kernels of
// internal/grid on the rank's own planes — every line lies within one
// plane, so the values are bitwise those of the serial full-grid pass.

package dist

import (
	"tme4a/internal/core"
	"tme4a/internal/grid"
	"tme4a/internal/pmesh"
	"tme4a/internal/vec"
)

// Plan holds the immutable decomposition tables shared by all ranks: halo
// specs per level and the solver's kernels. Safe for concurrent read-only
// use once built.
type Plan struct {
	D      Decomp
	TME    *core.Solver
	Mesher *pmesh.Mesher
	J      []float64
	Kern   [][3][]float64
	KernZ  [][][]float64

	// Restrict[k], Prolong[k], Conv[k] are the exchange tables of the
	// downward, upward and convolution z passes between levels k and k+1
	// (Prolong/Conv live on level-k fields, Restrict on the xy-restricted
	// intermediate). Interp is the finest-grid potential exchange feeding
	// back interpolation.
	Restrict []*Halo
	Prolong  []*Halo
	Conv     []*Halo
	Interp   *Halo
}

// NewPlan builds the decomposition plan for r ranks over tme's level
// hierarchy. It fails if any level's plane count does not divide evenly.
func NewPlan(tme *core.Solver, r int) (*Plan, error) {
	j := tme.TwoScale()
	half := len(j) / 2
	d, err := NewDecomp(tme.Prm, half, r)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		D:      d,
		TME:    tme,
		Mesher: tme.Mesher,
		J:      j,
		Kern:   tme.Kernels(),
		KernZ:  tme.LevelZKernels(),
	}
	L := d.Levels
	p.Restrict = make([]*Halo, L)
	p.Prolong = make([]*Halo, L)
	p.Conv = make([]*Halo, L)
	for k := 0; k < L; k++ {
		fd, cd := d.Dims(k), d.Dims(k+1)
		// Restriction reads fine planes [2czlo−half, 2czhi+half−1) of the
		// xy-restricted field (coarse x/y, fine z).
		if p.Restrict[k], err = NewHalo(r, fd[2], half, half-1, cd[0]*cd[1]); err != nil {
			return nil, err
		}
		// Prolongation reads coarse planes; half/2+1 covers every serial
		// tap (buildProlongTaps panics otherwise, so the bound is checked
		// constructively at plan time).
		ph := half/2 + 1
		if p.Prolong[k], err = NewHalo(r, cd[2], ph, ph, fd[0]*fd[1]); err != nil {
			return nil, err
		}
		// The level convolution reads gc planes on each side.
		if p.Conv[k], err = NewHalo(r, fd[2], d.Gc, d.Gc, fd[0]*fd[1]); err != nil {
			return nil, err
		}
	}
	// Back interpolation reads planes [b, b+p) for base planes b in the
	// own block: p−1 upper halo planes.
	if p.Interp, err = NewHalo(r, d.N[2], 0, d.Order-1, d.N[0]*d.N[1]); err != nil {
		return nil, err
	}
	return p, nil
}

// TopN returns the top-level grid dimensions.
func (p *Plan) TopN() [3]int { return p.D.Dims(p.D.Levels) }

// Mesh is one rank's block of every level grid plus the scratch and
// extended buffers of its z passes. All storage is preallocated; a full
// solve allocates nothing.
type Mesh struct {
	P    *Plan
	Rank int

	// Q[k] and Phi[k] are the rank's owned planes of the level-k charge
	// and potential grids, k = 0..Levels (level Levels is the top grid).
	Q, Phi []*grid.G

	// Per-level scratch: two-stage x/y intermediates and the z-pass
	// extended buffers.
	rxyA, rxyB, rext []*grid.G
	pxyA, pxyB, pext []*grid.G
	cxyA, cxyB, cext []*grid.G
	iext             *grid.G

	// ptaps[k] are the rank's prolongation tap lists for level k.
	ptaps [][][]ptap
}

// NewMesh allocates rank r's grid state under plan p.
func (p *Plan) NewMesh(r int) *Mesh {
	d := p.D
	L := d.Levels
	m := &Mesh{P: p, Rank: r}
	m.Q = make([]*grid.G, L+1)
	m.Phi = make([]*grid.G, L+1)
	for k := 0; k <= L; k++ {
		dims := d.Dims(k)
		onz := d.Onz(k)
		m.Q[k] = grid.New(dims[0], dims[1], onz)
		m.Phi[k] = grid.New(dims[0], dims[1], onz)
	}
	m.rxyA = make([]*grid.G, L)
	m.rxyB = make([]*grid.G, L)
	m.rext = make([]*grid.G, L)
	m.pxyA = make([]*grid.G, L)
	m.pxyB = make([]*grid.G, L)
	m.pext = make([]*grid.G, L)
	m.cxyA = make([]*grid.G, L)
	m.cxyB = make([]*grid.G, L)
	m.cext = make([]*grid.G, L)
	m.ptaps = make([][][]ptap, L)
	for k := 0; k < L; k++ {
		fd, cd := d.Dims(k), d.Dims(k+1)
		fonz, conz := d.Onz(k), d.Onz(k+1)
		m.rxyA[k] = grid.New(fd[0]/2, fd[1], fonz)
		m.rxyB[k] = grid.New(cd[0], cd[1], fonz)
		m.rext[k] = grid.New(cd[0], cd[1], p.Restrict[k].ExtNz)
		m.pxyA[k] = grid.New(2*cd[0], cd[1], conz)
		m.pxyB[k] = grid.New(fd[0], fd[1], conz)
		m.pext[k] = grid.New(fd[0], fd[1], p.Prolong[k].ExtNz)
		m.cxyA[k] = grid.New(fd[0], fd[1], fonz)
		m.cxyB[k] = grid.New(fd[0], fd[1], fonz)
		m.cext[k] = grid.New(fd[0], fd[1], p.Conv[k].ExtNz)
		czlo, _ := d.ZRange(k+1, r)
		fzlo, _ := d.ZRange(k, r)
		ph := p.Prolong[k].Lo
		m.ptaps[k] = buildProlongTaps(p.J, cd[2], czlo, conz, ph, fzlo, fonz)
	}
	m.iext = grid.New(d.N[0], d.N[1], p.Interp.ExtNz)
	return m
}

// AssignOwn zeroes the rank's finest charge block and scatters the listed
// atoms' charges onto it (idx ascending global index — the serial particle
// order).
//
//tme:noalloc
func (m *Mesh) AssignOwn(idx []int32, pos []vec.V, q []float64) {
	m.Q[0].Zero()
	zlo, _ := m.P.D.ZRange(0, m.Rank)
	m.P.Mesher.AssignPlanes(m.Q[0], zlo, idx, pos, q)
}

// RestrictXY runs the x and y restriction passes on the rank's level-k
// charge block, returning the xy-restricted field whose z sleeves are
// exchanged under Plan.Restrict[k].
//
//tme:noalloc
func (m *Mesh) RestrictXY(k int) *grid.G {
	grid.RestrictAxisInto(m.rxyA[k], m.Q[k], 0, m.P.J)
	grid.RestrictAxisInto(m.rxyB[k], m.rxyA[k], 1, m.P.J)
	return m.rxyB[k]
}

// RestrictExt returns the extended buffer the Restrict[k] exchange fills.
func (m *Mesh) RestrictExt(k int) *grid.G { return m.rext[k] }

// RestrictZ completes the level-(k+1) charges from the filled extended
// buffer.
//
//tme:noalloc
func (m *Mesh) RestrictZ(k int) { restrictZ(m.Q[k+1], m.rext[k], m.P.J) }

// ProlongXY runs the x and y prolongation passes on the rank's level-(k+1)
// potential block, returning the field whose z sleeves are exchanged under
// Plan.Prolong[k].
//
//tme:noalloc
func (m *Mesh) ProlongXY(k int) *grid.G {
	grid.ProlongAxisInto(m.pxyA[k], m.Phi[k+1], 0, m.P.J)
	grid.ProlongAxisInto(m.pxyB[k], m.pxyA[k], 1, m.P.J)
	return m.pxyB[k]
}

// ProlongExt returns the extended buffer the Prolong[k] exchange fills.
func (m *Mesh) ProlongExt(k int) *grid.G { return m.pext[k] }

// ProlongZ sets the rank's level-k potential block by replaying its
// prolongation tap lists against the filled extended buffer.
//
//tme:noalloc
func (m *Mesh) ProlongZ(k int) { prolongZ(m.Phi[k], m.pext[k], m.ptaps[k]) }

// ConvXY runs Gaussian ν's x and y convolution passes on the rank's
// level-k charge block, returning the field whose z sleeves are exchanged
// under Plan.Conv[k].
//
//tme:noalloc
func (m *Mesh) ConvXY(k, v int) *grid.G {
	grid.ConvAxis(m.cxyA[k], m.Q[k], 0, m.P.Kern[v][0])
	grid.ConvAxis(m.cxyB[k], m.cxyA[k], 1, m.P.Kern[v][1])
	return m.cxyB[k]
}

// ConvExt returns the extended buffer the Conv[k] exchange fills.
func (m *Mesh) ConvExt(k int) *grid.G { return m.cext[k] }

// ConvZAccum accumulates Gaussian ν's z pass into the rank's level-k
// potential block, using the level-scaled kernel exactly as
// core.Solver.levelConvAccum does (level k is core's 1-based level k+1).
//
//tme:noalloc
func (m *Mesh) ConvZAccum(k, v int) { convZAccum(m.Phi[k], m.cext[k], m.P.KernZ[k][v]) }

// InterpExt returns the extended finest-potential buffer the Interp
// exchange fills.
func (m *Mesh) InterpExt() *grid.G { return m.iext }

// Interp back-interpolates the listed atoms (base plane in the rank's
// block, ascending global index) against the filled extended potential,
// writing per-atom energy terms into eterm and accumulating forces into f
// (both indexed by global atom index).
//
//tme:noalloc
func (m *Mesh) Interp(idx []int32, pos []vec.V, q []float64, eterm []float64, f []vec.V) {
	zlo, _ := m.P.D.ZRange(0, m.Rank)
	m.P.Mesher.InterpolatePlanes(m.iext, zlo, idx, pos, q, eterm, f)
}
