// CheckPartition: executable specification of the halo-table invariant,
// shared by the unit tests and the geometry fuzz target.

package dist

import (
	"fmt"
	"math"
)

// CheckPartition verifies a halo table partitions every rank's extended
// window. It drives a full pack/deliver/unpack/fill cycle on a synthetic
// field whose elements encode (global plane, element) and then asserts,
// against independent wrap arithmetic, that every slot k of every rank's
// extended buffer holds exactly plane wrap(zlo−Lo+k, Nz) — no gap (a
// missed slot keeps its NaN sentinel), no overlap (a slot fed from the
// wrong source holds the wrong plane id). It also rejects duplicate
// planes inside a packed send list and out-of-range table entries.
func CheckPartition(h *Halo) error {
	r, pl := h.R, h.PlaneLen
	own := make([][]float64, r)
	for a := 0; a < r; a++ {
		own[a] = make([]float64, h.Onz*pl)
		zlo := a * h.Onz
		for lp := 0; lp < h.Onz; lp++ {
			for e := 0; e < pl; e++ {
				own[a][lp*pl+e] = float64((zlo+lp)*pl + e)
			}
		}
	}
	for src := 0; src < r; src++ {
		for dst := 0; dst < r; dst++ {
			lst := h.Planes(src, dst)
			for qi, g := range lst {
				if int(g) < src*h.Onz || int(g) >= (src+1)*h.Onz {
					return fmt.Errorf("send[%d→%d][%d] plane %d outside src block", src, dst, qi, g)
				}
				for _, g2 := range lst[:qi] {
					if g2 == g {
						return fmt.Errorf("send[%d→%d] lists plane %d twice", src, dst, g)
					}
				}
			}
		}
	}
	buf := make([]float64, h.MaxPackSize())
	for dst := 0; dst < r; dst++ {
		ext := make([]float64, h.ExtNz*pl)
		for e := range ext {
			ext[e] = math.NaN()
		}
		for src := 0; src < r; src++ {
			if src == dst {
				h.FillOwn(dst, own[dst], ext)
				continue
			}
			n := h.Pack(src, dst, own[src], buf)
			if n != h.PackSize(src, dst) {
				return fmt.Errorf("Pack(%d→%d) returned %d floats, PackSize says %d", src, dst, n, h.PackSize(src, dst))
			}
			h.Unpack(dst, src, buf[:n], ext)
		}
		zlo := dst * h.Onz
		for k := 0; k < h.ExtNz; k++ {
			g := wrapInt(zlo-h.Lo+k, h.Nz)
			for e := 0; e < pl; e++ {
				want := float64(g*pl + e)
				if got := ext[k*pl+e]; got != want {
					return fmt.Errorf("rank %d slot %d elem %d: got %v, want plane %d value %v (gap or overlap)",
						dst, k, e, got, g, want)
				}
			}
		}
	}
	return nil
}
