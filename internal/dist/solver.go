// Sequential R-rank rehearsal of the decomposed mesh pipeline. Solver
// executes every rank's stages in turn with explicit packed sleeves, so a
// test can assert its LongRange is bitwise equal to core.Solver.LongRange
// at any rank count before the concurrent engine (internal/rank) runs the
// identical tables over channels.

package dist

import (
	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/grid"
	"tme4a/internal/pmesh"
	"tme4a/internal/vec"
)

// Solver runs the decomposed pipeline over R logical ranks sequentially.
type Solver struct {
	Plan   *Plan
	meshes []*Mesh

	buf          []float64 // sleeve scratch, max pack size over all halos
	topQ, topPhi *grid.G
	assignIdx    [][]int32
	interpIdx    [][]int32
	eterm        []float64
}

// New builds an R-rank sequential solver over tme's hierarchy.
func New(tme *core.Solver, r int) (*Solver, error) {
	p, err := NewPlan(tme, r)
	if err != nil {
		return nil, err
	}
	s := &Solver{Plan: p}
	s.meshes = make([]*Mesh, r)
	max := p.Interp.MaxPackSize()
	for k := 0; k < p.D.Levels; k++ {
		for _, h := range []*Halo{p.Restrict[k], p.Prolong[k], p.Conv[k]} {
			if n := h.MaxPackSize(); n > max {
				max = n
			}
		}
	}
	s.buf = make([]float64, max)
	for i := range s.meshes {
		s.meshes[i] = p.NewMesh(i)
	}
	tn := p.TopN()
	s.topQ = grid.New(tn[0], tn[1], tn[2])
	s.topPhi = grid.New(tn[0], tn[1], tn[2])
	s.assignIdx = make([][]int32, r)
	s.interpIdx = make([][]int32, r)
	return s, nil
}

// exchange performs halo h between all rank pairs: pack, deliver, unpack,
// plus each rank's own-plane fill. src(r) and ext(r) return rank r's field
// and extended buffer.
func (s *Solver) exchange(h *Halo, src, ext func(r int) *grid.G) {
	r := s.Plan.D.R
	for a := 0; a < r; a++ {
		for b := 0; b < r; b++ {
			if a == b || h.PackSize(a, b) == 0 {
				continue
			}
			n := h.Pack(a, b, src(a).Data, s.buf)
			h.Unpack(b, a, s.buf[:n], ext(b).Data)
		}
	}
	for a := 0; a < r; a++ {
		h.FillOwn(a, src(a).Data, ext(a).Data)
	}
}

// LongRange computes the mesh part of the Coulomb energy plus the Ewald
// self energy, accumulating forces into f (may be nil) — bitwise equal to
// core.Solver.LongRange at any rank count.
func (s *Solver) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	p := s.Plan
	d := p.D
	r := d.R
	L := d.Levels
	n := len(pos)
	if cap(s.eterm) < n {
		s.eterm = make([]float64, n)
	}
	s.eterm = s.eterm[:n]
	// Atom windows: a rank assigns every atom whose spline support touches
	// its finest planes and interpolates every atom whose base plane it
	// owns. Lists are built walking atoms in ascending index, the serial
	// particle order.
	for a := 0; a < r; a++ {
		s.assignIdx[a] = s.assignIdx[a][:0]
		s.interpIdx[a] = s.interpIdx[a][:0]
	}
	for i := 0; i < n; i++ {
		b := p.Mesher.BasePlane(pos[i])
		s.interpIdx[b/d.Onz(0)] = append(s.interpIdx[b/d.Onz(0)], int32(i))
		for a := 0; a < r; a++ {
			zlo, zhi := d.ZRange(0, a)
			if p.Mesher.SupportHits(pos[i], zlo, zhi) {
				s.assignIdx[a] = append(s.assignIdx[a], int32(i))
			}
		}
	}
	// Charge assignment, then the downward restriction pass.
	for a := 0; a < r; a++ {
		s.meshes[a].AssignOwn(s.assignIdx[a], pos, q)
	}
	for k := 0; k < L; k++ {
		kk := k
		s.exchange(p.Restrict[k],
			func(a int) *grid.G { return s.meshes[a].RestrictXY(kk) },
			func(a int) *grid.G { return s.meshes[a].RestrictExt(kk) })
		for a := 0; a < r; a++ {
			s.meshes[a].RestrictZ(k)
		}
	}
	// Top solve at the root: gather owned top blocks (plain plane copies),
	// SPME, scatter the potential back.
	tn := p.TopN()
	pl := tn[0] * tn[1]
	onzTop := d.Onz(L)
	for a := 0; a < r; a++ {
		copy(s.topQ.Data[a*onzTop*pl:(a+1)*onzTop*pl], s.meshes[a].Q[L].Data)
	}
	p.TME.TopSolver().PotentialGridInto(s.topPhi, s.topQ)
	for a := 0; a < r; a++ {
		copy(s.meshes[a].Phi[L].Data, s.topPhi.Data[a*onzTop*pl:(a+1)*onzTop*pl])
	}
	// Upward pass: prolong, then accumulate each Gaussian's convolution.
	for k := L - 1; k >= 0; k-- {
		kk := k
		s.exchange(p.Prolong[k],
			func(a int) *grid.G { return s.meshes[a].ProlongXY(kk) },
			func(a int) *grid.G { return s.meshes[a].ProlongExt(kk) })
		for a := 0; a < r; a++ {
			s.meshes[a].ProlongZ(k)
		}
		for v := 0; v < p.TME.Prm.M; v++ {
			vv := v
			s.exchange(p.Conv[k],
				func(a int) *grid.G { return s.meshes[a].ConvXY(kk, vv) },
				func(a int) *grid.G { return s.meshes[a].ConvExt(kk) })
			for a := 0; a < r; a++ {
				s.meshes[a].ConvZAccum(k, v)
			}
		}
	}
	// Back interpolation against the exchanged finest potential, then the
	// serial chunk-order energy fold.
	s.exchange(p.Interp,
		func(a int) *grid.G { return s.meshes[a].Phi[0] },
		func(a int) *grid.G { return s.meshes[a].InterpExt() })
	for a := 0; a < r; a++ {
		s.meshes[a].Interp(s.interpIdx[a], pos, q, s.eterm, f)
	}
	return pmesh.ReplayEnergy(s.eterm, q) + ewald.SelfEnergy(q, p.TME.Prm.Alpha)
}
