package dist

import (
	"testing"
)

// FuzzHaloPartition fuzzes the decomposition geometry — rank count, plane
// counts, two-scale order, convolution cutoff — and checks every halo
// table the plan would build (restriction, prolongation, convolution,
// interpolation widths) is a partition of each rank's extended window:
// no gap, no overlap (CheckPartition). It also exercises the prolongation
// tap builder, whose panic on an uncovered coarse plane would surface any
// too-narrow halo width.
func FuzzHaloPartition(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(4), uint8(4))
	f.Add(uint8(2), uint8(2), uint8(4), uint8(4))
	f.Add(uint8(4), uint8(1), uint8(6), uint8(3))
	f.Add(uint8(8), uint8(4), uint8(8), uint8(1))
	f.Add(uint8(3), uint8(3), uint8(2), uint8(7))
	f.Add(uint8(7), uint8(2), uint8(10), uint8(5))
	f.Fuzz(func(t *testing.T, rRaw, mulRaw, orderRaw, gcRaw uint8) {
		r := 1 + int(rRaw)%8               // ranks 1..8
		mul := 1 + int(mulRaw)%6           // coarse planes per rank 1..6
		order := 2 * (1 + int(orderRaw)%8) // even order 2..16
		gc := 1 + int(gcRaw)%10            // conv cutoff 1..10
		half := order / 2                  // len(bspline.TwoScale(order))/2 = (order+1)/2 for even order
		cn := r * mul                      // coarse plane count
		fn := 2 * cn                       // fine plane count
		pl := 3                            // plane length is irrelevant to the index maps
		type spec struct {
			name       string
			nz, lo, hi int
		}
		specs := []spec{
			{"restrict", fn, half, half - 1},
			{"prolong", cn, half/2 + 1, half/2 + 1},
			{"conv", fn, gc, gc},
			{"interp", fn, 0, order - 1},
		}
		for _, s := range specs {
			h, err := NewHalo(r, s.nz, s.lo, s.hi, pl)
			if err != nil {
				t.Fatalf("%s: NewHalo(r=%d nz=%d lo=%d hi=%d): %v", s.name, r, s.nz, s.lo, s.hi, err)
			}
			if err := CheckPartition(h); err != nil {
				t.Errorf("%s (r=%d nz=%d lo=%d hi=%d): %v", s.name, r, s.nz, s.lo, s.hi, err)
			}
		}
		// The prolongation tap builder panics if its halo misses a needed
		// coarse plane; running it for every rank proves the width bound
		// for this geometry. TwoScale coefficients are irrelevant to the
		// index maps, so a placeholder J of the right length suffices.
		j := make([]float64, order+1)
		for i := range j {
			j[i] = 1
		}
		ph := half/2 + 1
		conz, fonz := mul, 2*mul
		for a := 0; a < r; a++ {
			taps := buildProlongTaps(j, cn, a*conz, conz, ph, a*fonz, fonz)
			// Every owned fine plane must receive at least one tap: the
			// serial scatter writes every fine plane (half ≥ 1).
			for fp, tl := range taps {
				if len(tl) == 0 {
					t.Errorf("prolong taps: rank %d fine plane %d has no contributions (cn=%d order=%d)", a, fp, cn, order)
				}
			}
		}
	})
}
