// Slab z-pass kernels. Each mirrors the per-element arithmetic of its
// serial counterpart in internal/grid (convLines, restrictLines,
// prolongLines) exactly — same taps, same ascending tap order, same local
// accumulator — but reads foreign planes from an extended buffer instead
// of wrapping the full grid. The extended buffer's slot k holds global
// plane wrap(zlo−Lo+k, nz), so the slot of the plane a serial tap reads is
// pure index arithmetic with no modulo in the hot loop.

package dist

import "tme4a/internal/grid"

// convZAccum accumulates the z-axis convolution into the owned block:
// dst[·,·,i] += Σ_t kernel[t]·plane(zlo+i+gc−t), with the taps of one
// output element summed t-ascending into a local accumulator first — the
// convLines order. ext must hold the window [zlo−gc, zhi+gc), i.e.
// Lo = Hi = gc.
//
//tme:noalloc
func convZAccum(dst, ext *grid.G, kernel []float64) {
	gc := len(kernel) / 2
	nx, ny, onz := dst.N[0], dst.N[1], dst.N[2]
	nt := 2*gc + 1
	for iz := 0; iz < onz; iz++ {
		for iy := 0; iy < ny; iy++ {
			out := dst.Data[nx*(iy+ny*iz) : nx*(iy+ny*iz)+nx]
			for ix := 0; ix < nx; ix++ {
				var s float64
				// Serial convLines: s += kernel[t]·row[2gc−t], where
				// row[2gc−t] is plane wrap(i+gc−t) — ext slot i+2gc−t.
				for t := 0; t < nt; t++ {
					ez := iz + 2*gc - t
					s += kernel[t] * ext.Data[nx*(iy+ny*ez)+ix]
				}
				out[ix] += s
			}
		}
	}
}

// restrictZ computes the z-axis two-scale restriction into the owned
// coarse block: dst[·,·,i] = Σ_m J[m]·finePlane(2(czlo+i)+m−half), m
// ascending — the restrictLines order. ext holds the fine-field window
// [2·czlo−half, 2·czhi+half−1), i.e. Lo = half, Hi = half−1 on the fine
// field; the serial tap 2i+m−half relative to the window start is slot
// 2i+m.
//
//tme:noalloc
func restrictZ(dst, ext *grid.G, J []float64) {
	half := len(J) / 2
	nj := 2*half + 1
	nx, ny, conz := dst.N[0], dst.N[1], dst.N[2]
	for iz := 0; iz < conz; iz++ {
		for iy := 0; iy < ny; iy++ {
			out := dst.Data[nx*(iy+ny*iz) : nx*(iy+ny*iz)+nx]
			for ix := 0; ix < nx; ix++ {
				var s float64
				for m := 0; m < nj; m++ {
					ez := 2*iz + m
					s += J[m] * ext.Data[nx*(iy+ny*ez)+ix]
				}
				out[ix] = s
			}
		}
	}
}

// ptap is one prolongation contribution to a fine plane: coefficient times
// the coarse plane sitting in extended-buffer slot Slot.
type ptap struct {
	Slot  int32
	Coeff float64
}

// buildProlongTaps simulates the serial prolongLines scatter over the full
// coarse ring (source planes i ascending, taps m ascending, exactly the
// loop in grid.prolongLines) and records, for each fine plane this rank
// owns, its contributions in that serial order. Replaying a plane's list
// into a fresh accumulator therefore reproduces the serial left-to-right
// sum bitwise, including wrap-around contributions. Panics if the chosen
// halo width does not cover a needed coarse plane — a plan-time invariant,
// fuzz-checked in halo_fuzz_test.go.
func buildProlongTaps(J []float64, cn, czlo, conz, ph, fzlo, fonz int) [][]ptap {
	half := len(J) / 2
	fn := 2 * cn
	extNz := conz + 2*ph
	slotOf := func(i int) int32 {
		for k := 0; k < extNz; k++ {
			if wrapInt(czlo-ph+k, cn) == i {
				return int32(k)
			}
		}
		panic("dist: prolongation halo does not cover a needed coarse plane")
	}
	taps := make([][]ptap, fonz)
	for i := 0; i < cn; i++ {
		for m := -half; m <= half; m++ {
			f := wrapInt(2*i+m, fn)
			if f < fzlo || f >= fzlo+fonz {
				continue
			}
			taps[f-fzlo] = append(taps[f-fzlo], ptap{slotOf(i), J[m+half]})
		}
	}
	return taps
}

// prolongZ sets the owned fine block from the coarse extended buffer by
// replaying each fine plane's tap list: acc starts at zero and adds
// Coeff·v per tap in list order, skipping v == 0 exactly as the serial
// scatter does, then stores acc (the serial pass clears the line first).
//
//tme:noalloc
func prolongZ(dst, ext *grid.G, taps [][]ptap) {
	nx, ny, onz := dst.N[0], dst.N[1], dst.N[2]
	for iz := 0; iz < onz; iz++ {
		tl := taps[iz]
		for iy := 0; iy < ny; iy++ {
			out := dst.Data[nx*(iy+ny*iz) : nx*(iy+ny*iz)+nx]
			for ix := 0; ix < nx; ix++ {
				var acc float64
				for _, t := range tl {
					v := ext.Data[nx*(iy+ny*int(t.Slot))+ix]
					if v == 0 {
						continue
					}
					acc += t.Coeff * v
				}
				out[ix] = acc
			}
		}
	}
}
