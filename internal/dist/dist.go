// Package dist implements the distributed-memory TME exactly as the
// MDGRAPE-4A executes it: the finest grid is block-decomposed over a
// P×P×P node array, charge assignment spreads into per-node sleeves that
// are folded onto the owning neighbours, the separable convolutions
// exchange ±g_c halos along one axis at a time (the GCU dataflow on the
// 3D torus), restriction/prolongation use ±p/2 halos, and the top-level
// grid is gathered to a root for the SPME solve (the TMENW octree).
//
// Every inter-node data movement is an explicit copy between per-node
// local arrays — no computation reads another node's memory directly — so
// the package is an executable proof that the paper's communication
// pattern (axis-wise limited-range exchanges instead of all-to-all FFT
// transposes) reproduces the global method: tests assert equality with
// internal/core to floating-point round-off.
package dist

import (
	"fmt"

	"tme4a/internal/bspline"
	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/grid"
	"tme4a/internal/units"
	"tme4a/internal/vec"
)

// Solver wraps a configured TME solver with a node decomposition.
type Solver struct {
	tme *core.Solver
	// P nodes per axis; the finest grid dimension must be divisible by P
	// and the local side must be ≥ every halo width used.
	P int
}

// New validates the decomposition. Requirements: N[j] divisible by P with
// equal N per axis, local side ≥ g_c (one-neighbour halo exchange, as on
// the machine where g_c ≤ 2 node widths — here we keep it to one for
// clarity), and local side ≥ spline reach.
func New(tme *core.Solver, p int) *Solver {
	n := tme.Prm.N
	if n[0] != n[1] || n[1] != n[2] {
		panic("dist: requires a cubic grid")
	}
	if n[0]%p != 0 {
		panic(fmt.Sprintf("dist: grid %d not divisible by %d nodes", n[0], p))
	}
	local := n[0] / p
	if local < tme.Prm.Gc {
		panic(fmt.Sprintf("dist: local side %d smaller than gc %d (needs multi-hop halos)", local, tme.Prm.Gc))
	}
	if local < tme.Prm.Order/2+1 {
		panic("dist: local side smaller than spline reach")
	}
	coarsest := local >> uint(tme.Prm.Levels)
	if coarsest < 1 {
		panic("dist: too many levels for this decomposition")
	}
	return &Solver{tme: tme, P: p}
}

// field is one node's block of a level grid with a halo shell.
type field struct {
	side, halo int
	data       []float64
}

func newField(side, halo int) *field {
	w := side + 2*halo
	return &field{side: side, halo: halo, data: make([]float64, w*w*w)}
}

func (f *field) width() int { return f.side + 2*f.halo }

// at addresses local coordinates in [−halo, side+halo).
func (f *field) at(i, j, k int) *float64 {
	w := f.width()
	return &f.data[(i+f.halo)+w*((j+f.halo)+w*(k+f.halo))]
}

// machine is the collection of nodes for one level.
type machine struct {
	p      int
	fields []*field
}

func newMachine(p, side, halo int) *machine {
	m := &machine{p: p, fields: make([]*field, p*p*p)}
	for i := range m.fields {
		m.fields[i] = newField(side, halo)
	}
	return m
}

func (m *machine) node(cx, cy, cz int) *field {
	w := func(c int) int { return ((c % m.p) + m.p) % m.p }
	return m.fields[w(cx)+m.p*(w(cy)+m.p*w(cz))]
}

// foldSleeves adds every node's halo contributions onto the owned region
// of the periodic neighbour that owns those points (the grid-charge sleeve
// accumulation the LRU grid memories perform over the network), then
// clears the halos.
func (m *machine) foldSleeves() {
	s := m.fields[0].side
	h := m.fields[0].halo
	for cz := 0; cz < m.p; cz++ {
		for cy := 0; cy < m.p; cy++ {
			for cx := 0; cx < m.p; cx++ {
				src := m.node(cx, cy, cz)
				for k := -h; k < s+h; k++ {
					for j := -h; j < s+h; j++ {
						for i := -h; i < s+h; i++ {
							if i >= 0 && i < s && j >= 0 && j < s && k >= 0 && k < s {
								continue // owned point
							}
							v := *src.at(i, j, k)
							if v == 0 {
								continue
							}
							// Owner of global point (cx·s+i, ...).
							dcx, li := ownerOf(cx, i, s, m.p)
							dcy, lj := ownerOf(cy, j, s, m.p)
							dcz, lk := ownerOf(cz, k, s, m.p)
							*m.node(dcx, dcy, dcz).at(li, lj, lk) += v
							*src.at(i, j, k) = 0
						}
					}
				}
			}
		}
	}
}

// ownerOf maps a possibly out-of-block local index to (owner cell delta,
// local index) assuming |i| < 2s.
func ownerOf(c, i, s, p int) (int, int) {
	switch {
	case i < 0:
		return c - 1, i + s
	case i >= s:
		return c + 1, i - s
	default:
		return c, i
	}
}

// exchangeHalos fills every node's halo shell (width w ≤ halo) from the
// owned data of its periodic neighbours — the sleeve/halo communication
// step. Only face-adjacent reach is required because w ≤ side.
func (m *machine) exchangeHalos(w int) {
	s := m.fields[0].side
	for cz := 0; cz < m.p; cz++ {
		for cy := 0; cy < m.p; cy++ {
			for cx := 0; cx < m.p; cx++ {
				dst := m.node(cx, cy, cz)
				for k := -w; k < s+w; k++ {
					for j := -w; j < s+w; j++ {
						for i := -w; i < s+w; i++ {
							if i >= 0 && i < s && j >= 0 && j < s && k >= 0 && k < s {
								continue
							}
							ocx, li := ownerOf(cx, i, s, m.p)
							ocy, lj := ownerOf(cy, j, s, m.p)
							ocz, lk := ownerOf(cz, k, s, m.p)
							*dst.at(i, j, k) = *m.node(ocx, ocy, ocz).at(li, lj, lk)
						}
					}
				}
			}
		}
	}
}

// convAxis convolves every node's owned region along one axis using its
// halo (which must have been exchanged with width ≥ len(kernel)/2),
// writing into dst (same geometry).
func (m *machine) convAxis(dst *machine, axis int, kernel []float64) {
	gc := len(kernel) / 2
	s := m.fields[0].side
	for n := range m.fields {
		src := m.fields[n]
		out := dst.fields[n]
		for k := 0; k < s; k++ {
			for j := 0; j < s; j++ {
				for i := 0; i < s; i++ {
					var acc float64
					for mm := -gc; mm <= gc; mm++ {
						var v float64
						switch axis {
						case 0:
							v = *src.at(i-mm, j, k)
						case 1:
							v = *src.at(i, j-mm, k)
						default:
							v = *src.at(i, j, k-mm)
						}
						acc += kernel[mm+gc] * v
					}
					*out.at(i, j, k) = acc
				}
			}
		}
	}
}

// gather assembles the global grid from owned regions.
func (m *machine) gather() *grid.G {
	s := m.fields[0].side
	n := s * m.p
	g := grid.New(n, n, n)
	for cz := 0; cz < m.p; cz++ {
		for cy := 0; cy < m.p; cy++ {
			for cx := 0; cx < m.p; cx++ {
				f := m.node(cx, cy, cz)
				for k := 0; k < s; k++ {
					for j := 0; j < s; j++ {
						for i := 0; i < s; i++ {
							g.Set(cx*s+i, cy*s+j, cz*s+k, *f.at(i, j, k))
						}
					}
				}
			}
		}
	}
	return g
}

// scatter distributes a global grid into owned regions.
func (m *machine) scatter(g *grid.G) {
	s := m.fields[0].side
	for cz := 0; cz < m.p; cz++ {
		for cy := 0; cy < m.p; cy++ {
			for cx := 0; cx < m.p; cx++ {
				f := m.node(cx, cy, cz)
				for k := 0; k < s; k++ {
					for j := 0; j < s; j++ {
						for i := 0; i < s; i++ {
							*f.at(i, j, k) = g.At(cx*s+i, cy*s+j, cz*s+k)
						}
					}
				}
			}
		}
	}
}

// addOwned accumulates src's owned regions into dst's.
func (m *machine) addOwned(src *machine) {
	s := m.fields[0].side
	for n := range m.fields {
		d, o := m.fields[n], src.fields[n]
		for k := 0; k < s; k++ {
			for j := 0; j < s; j++ {
				for i := 0; i < s; i++ {
					*d.at(i, j, k) += *o.at(i, j, k)
				}
			}
		}
	}
}

// scaleOwned multiplies owned regions by c.
func (m *machine) scaleOwned(c float64) {
	s := m.fields[0].side
	for _, f := range m.fields {
		for k := 0; k < s; k++ {
			for j := 0; j < s; j++ {
				for i := 0; i < s; i++ {
					*f.at(i, j, k) *= c
				}
			}
		}
	}
}

// restrictTo computes the two-scale restriction of each node's owned block
// into a half-resolution machine (halos must be exchanged to width p/2).
func (m *machine) restrictTo(dst *machine, j []float64) {
	half := len(j) / 2
	s := dst.fields[0].side
	for n := range m.fields {
		src := m.fields[n]
		out := dst.fields[n]
		for kz := 0; kz < s; kz++ {
			for ky := 0; ky < s; ky++ {
				for kx := 0; kx < s; kx++ {
					var acc float64
					for mz := -half; mz <= half; mz++ {
						for my := -half; my <= half; my++ {
							for mx := -half; mx <= half; mx++ {
								acc += j[mx+half] * j[my+half] * j[mz+half] *
									*src.at(2*kx+mx, 2*ky+my, 2*kz+mz)
							}
						}
					}
					*out.at(kx, ky, kz) = acc
				}
			}
		}
	}
}

// prolongTo computes the two-scale prolongation of each node's owned
// coarse block into a double-resolution machine (coarse halos exchanged to
// width ⌈p/4⌉+1).
func (m *machine) prolongTo(dst *machine, j []float64) {
	half := len(j) / 2
	s := dst.fields[0].side
	for n := range m.fields {
		src := m.fields[n]
		out := dst.fields[n]
		for kz := 0; kz < s; kz++ {
			for ky := 0; ky < s; ky++ {
				for kx := 0; kx < s; kx++ {
					var acc float64
					for mz := -half; mz <= half; mz++ {
						if (kz-mz)&1 != 0 {
							continue
						}
						for my := -half; my <= half; my++ {
							if (ky-my)&1 != 0 {
								continue
							}
							for mx := -half; mx <= half; mx++ {
								if (kx-mx)&1 != 0 {
									continue
								}
								acc += j[mx+half] * j[my+half] * j[mz+half] *
									*src.at((kx-mx)/2, (ky-my)/2, (kz-mz)/2)
							}
						}
					}
					*out.at(kx, ky, kz) = acc
				}
			}
		}
	}
}

// LongRange runs the full distributed TME mesh computation and returns the
// mesh + self energy, accumulating forces into f. Atom↔node assignment is
// by position; each node spreads and gathers only its own atoms.
func (s *Solver) LongRange(pos []vec.V, q []float64, f []vec.V) float64 {
	prm := s.tme.Prm
	nGrid := prm.N[0]
	local := nGrid / s.P
	gc := prm.Gc
	pOrd := prm.Order
	box := s.tme.Box
	j2 := s.tme.TwoScale()

	// Halo width: the charge-assignment sleeve needs p/2; convolution
	// needs gc; take the max once.
	halo := gc
	if pOrd/2+1 > halo {
		halo = pOrd/2 + 1
	}

	// --- Per-node charge assignment with sleeves. ---
	charges := newMachine(s.P, local, halo)
	invH := [3]float64{
		float64(nGrid) / box.L[0],
		float64(nGrid) / box.L[1],
		float64(nGrid) / box.L[2],
	}
	nodeOfAtom := make([]int32, len(pos))
	var wx, wy, wz, dw [16]float64
	import1 := func(i int) (fl *field, ux, uy, uz float64, cx, cy, cz int) {
		r := box.Wrap(pos[i])
		ux = r[0] * invH[0]
		uy = r[1] * invH[1]
		uz = r[2] * invH[2]
		cx = int(ux) / local
		cy = int(uy) / local
		cz = int(uz) / local
		if cx >= s.P {
			cx = s.P - 1
		}
		if cy >= s.P {
			cy = s.P - 1
		}
		if cz >= s.P {
			cz = s.P - 1
		}
		return charges.node(cx, cy, cz), ux, uy, uz, cx, cy, cz
	}
	for i := range pos {
		if q[i] == 0 {
			nodeOfAtom[i] = -1
			continue
		}
		fl, ux, uy, uz, cx, cy, cz := import1(i)
		nodeOfAtom[i] = int32(cx + s.P*(cy+s.P*cz))
		mx := bspline.Weights(pOrd, ux, wx[:pOrd], dw[:pOrd])
		my := bspline.Weights(pOrd, uy, wy[:pOrd], dw[:pOrd])
		mz := bspline.Weights(pOrd, uz, wz[:pOrd], dw[:pOrd])
		for c := 0; c < pOrd; c++ {
			for b := 0; b < pOrd; b++ {
				for a := 0; a < pOrd; a++ {
					*fl.at(mx+a-cx*local, my+b-cy*local, mz+c-cz*local) +=
						q[i] * wx[a] * wy[b] * wz[c]
				}
			}
		}
	}
	charges.foldSleeves()

	// --- Restrictions down to the top level. ---
	levels := make([]*machine, prm.Levels+2)
	levels[1] = charges
	side := local
	for l := 1; l <= prm.Levels; l++ {
		levels[l].exchangeHalos(pOrd / 2)
		side /= 2
		levels[l+1] = newMachine(s.P, side, minInt(halo, side))
		levels[l].restrictTo(levels[l+1], j2)
	}

	// --- Top level: gather to root (the TMENW), solve, scatter. ---
	topQ := levels[prm.Levels+1].gather()
	topPhi := s.tme.TopSolver().PotentialGrid(topQ)
	phi := newMachine(s.P, levels[prm.Levels+1].fields[0].side, levels[prm.Levels+1].fields[0].halo)
	phi.scatter(topPhi)

	// --- Upward pass: prolong + per-level separable convolution. ---
	for l := prm.Levels; l >= 1; l-- {
		fineSide := levels[l].fields[0].side
		up := newMachine(s.P, fineSide, levels[l].fields[0].halo)
		phi.exchangeHalos(pOrd/4 + 1)
		phi.prolongTo(up, j2)

		// Level convolution on the charges (halos refreshed per axis pass).
		conv := newMachine(s.P, fineSide, levels[l].fields[0].halo)
		tmp := newMachine(s.P, fineSide, levels[l].fields[0].halo)
		tmp2 := newMachine(s.P, fineSide, levels[l].fields[0].halo)
		out := newMachine(s.P, fineSide, levels[l].fields[0].halo)
		for _, kv := range s.tme.Kernels() {
			cur := levels[l]
			cur.exchangeHalos(gc)
			cur.convAxis(tmp, 0, kv[0])
			tmp.exchangeHalos(gc)
			tmp.convAxis(tmp2, 1, kv[1])
			tmp2.exchangeHalos(gc)
			tmp2.convAxis(out, 2, kv[2])
			conv.addOwned(out)
		}
		conv.scaleOwned(units.Coulomb / float64(int(1)<<uint(l-1)))
		up.addOwned(conv)
		phi = up
	}

	// --- Back interpolation per node. ---
	phi.exchangeHalos(pOrd/2 + 1)
	var energy float64
	for i := range pos {
		if nodeOfAtom[i] < 0 {
			continue
		}
		n := int(nodeOfAtom[i])
		cx := n % s.P
		cy := (n / s.P) % s.P
		cz := n / (s.P * s.P)
		fl := phi.fields[n]
		r := box.Wrap(pos[i])
		ux := r[0] * invH[0]
		uy := r[1] * invH[1]
		uz := r[2] * invH[2]
		var dx, dy, dz [16]float64
		mx := bspline.Weights(pOrd, ux, wx[:pOrd], dx[:pOrd])
		my := bspline.Weights(pOrd, uy, wy[:pOrd], dy[:pOrd])
		mz := bspline.Weights(pOrd, uz, wz[:pOrd], dz[:pOrd])
		var pot, gx, gy, gz float64
		for c := 0; c < pOrd; c++ {
			for b := 0; b < pOrd; b++ {
				for a := 0; a < pOrd; a++ {
					v := *fl.at(mx+a-cx*local, my+b-cy*local, mz+c-cz*local)
					pot += v * wx[a] * wy[b] * wz[c]
					gx += v * dx[a] * wy[b] * wz[c]
					gy += v * wx[a] * dy[b] * wz[c]
					gz += v * wx[a] * wy[b] * dz[c]
				}
			}
		}
		energy += 0.5 * q[i] * pot
		if f != nil {
			f[i][0] -= q[i] * gx * invH[0]
			f[i][1] -= q[i] * gy * invH[1]
			f[i][2] -= q[i] * gz * invH[2]
		}
	}
	return energy + ewald.SelfEnergy(q, prm.Alpha)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
