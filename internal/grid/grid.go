// Package grid provides periodic 3D scalar grids and the grid-to-grid
// operations of multilevel mesh methods: axis-wise (separable) convolutions,
// range-limited direct 3D convolutions, and the two-scale restriction and
// prolongation operators.
//
// Data is stored in a flat slice, x-fastest: index = ix + Nx·(iy + Ny·iz),
// matching the layout of internal/fft.Plan3.
//
// The grid-to-grid operators are parallelized over independent 1D lines
// with par.ForRangeGrain. Every line's arithmetic is identical to the
// serial loop (same taps, same summation order), so results are bitwise
// independent of GOMAXPROCS.
package grid

import (
	"fmt"
	"sync"

	"tme4a/internal/obs"
	"tme4a/internal/par"
)

// G is a periodic 3D scalar grid.
type G struct {
	N    [3]int
	Data []float64
}

// New returns a zeroed nx×ny×nz grid.
func New(nx, ny, nz int) *G {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("grid: invalid dimensions %d×%d×%d", nx, ny, nz))
	}
	return &G{N: [3]int{nx, ny, nz}, Data: make([]float64, nx*ny*nz)}
}

// Len returns the total number of grid points.
func (g *G) Len() int { return g.N[0] * g.N[1] * g.N[2] }

// Idx returns the flat index of (ix, iy, iz), which must be in range.
func (g *G) Idx(ix, iy, iz int) int { return ix + g.N[0]*(iy+g.N[1]*iz) }

// WrapIdx returns the flat index of (ix, iy, iz) with periodic wrapping.
func (g *G) WrapIdx(ix, iy, iz int) int {
	return wrap(ix, g.N[0]) + g.N[0]*(wrap(iy, g.N[1])+g.N[1]*wrap(iz, g.N[2]))
}

// At returns the value at (ix, iy, iz) with periodic wrapping.
func (g *G) At(ix, iy, iz int) float64 { return g.Data[g.WrapIdx(ix, iy, iz)] }

// Set stores v at (ix, iy, iz) with periodic wrapping.
func (g *G) Set(ix, iy, iz int, v float64) { g.Data[g.WrapIdx(ix, iy, iz)] = v }

// Add accumulates v at (ix, iy, iz) with periodic wrapping.
func (g *G) Add(ix, iy, iz int, v float64) { g.Data[g.WrapIdx(ix, iy, iz)] += v }

// Zero clears the grid.
func (g *G) Zero() {
	for i := range g.Data {
		g.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (g *G) Clone() *G {
	c := New(g.N[0], g.N[1], g.N[2])
	copy(c.Data, g.Data)
	return c
}

// AddGrid accumulates src into g; shapes must match.
func (g *G) AddGrid(src *G) {
	if g.N != src.N {
		panic("grid: AddGrid shape mismatch")
	}
	for i, v := range src.Data {
		g.Data[i] += v
	}
}

// Scale multiplies every point by s.
func (g *G) Scale(s float64) {
	for i := range g.Data {
		g.Data[i] *= s
	}
}

// Sum returns the sum over all grid points.
func (g *G) Sum() float64 {
	var s float64
	for _, v := range g.Data {
		s += v
	}
	return s
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Pool recycles grids by shape so steady-state mesh pipelines allocate
// nothing. Get returns a grid with undefined contents (callers that
// accumulate must Zero it); Put hands a grid back for reuse. A grid
// obtained from Get is exclusively owned until Put, so a Pool may be shared
// by concurrent pipelines.
type Pool struct {
	mu   sync.Mutex
	free map[[3]int][]*G
	// o, when non-nil, counts Gets and allocation misses — the pool-health
	// counters of the observability layer (a steady-state pipeline should
	// show zero misses after warmup).
	o *obs.Recorder
}

// NewPool returns an empty grid pool.
func NewPool() *Pool { return &Pool{free: map[[3]int][]*G{}} }

// SetObs attaches a stage recorder (nil detaches).
func (p *Pool) SetObs(r *obs.Recorder) {
	p.mu.Lock()
	p.o = r
	p.mu.Unlock()
}

// Get returns an nx×ny×nz grid with undefined contents.
func (p *Pool) Get(n [3]int) *G {
	p.mu.Lock()
	p.o.Add(obs.CounterPoolGets, 1)
	if s := p.free[n]; len(s) > 0 {
		g := s[len(s)-1]
		p.free[n] = s[:len(s)-1]
		p.mu.Unlock()
		return g
	}
	p.o.Add(obs.CounterPoolMisses, 1)
	p.mu.Unlock()
	return New(n[0], n[1], n[2])
}

// Put returns a grid to the pool. The caller must not use g afterwards.
func (p *Pool) Put(g *G) {
	if g == nil {
		return
	}
	p.mu.Lock()
	p.free[g.N] = append(p.free[g.N], g)
	p.mu.Unlock()
}

// axisLoop describes iteration over all 1D lines along one axis: n is the
// line length, stride the flat-index step along the axis, and bases the flat
// index of the first element of every line. The bases slices are immutable
// once built and cached per (shape, axis), since every convolution,
// restriction and prolongation of a fixed-size MD run re-walks the same
// lines each step.
func axisLoop(n3 [3]int, axis int) (n, stride int, bases []int) {
	type key struct {
		n    [3]int
		axis int
	}
	switch axis {
	case 0:
		n, stride = n3[0], 1
	case 1:
		n, stride = n3[1], n3[0]
	case 2:
		n, stride = n3[2], n3[0]*n3[1]
	default:
		panic("grid: invalid axis")
	}
	if v, ok := axisCache.Load(key{n3, axis}); ok {
		return n, stride, v.([]int)
	}
	nx, ny, nz := n3[0], n3[1], n3[2]
	switch axis {
	case 0:
		bases = make([]int, 0, ny*nz)
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				bases = append(bases, nx*(y+ny*z))
			}
		}
	case 1:
		bases = make([]int, 0, nx*nz)
		for z := 0; z < nz; z++ {
			for x := 0; x < nx; x++ {
				bases = append(bases, x+nx*ny*z)
			}
		}
	case 2:
		bases = make([]int, 0, nx*ny)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				bases = append(bases, x+nx*y)
			}
		}
	}
	axisCache.Store(key{n3, axis}, bases)
	return n, stride, bases
}

var axisCache sync.Map

// linePool recycles per-worker padded-line scratch buffers. The *[]float64
// indirection keeps Get/Put allocation-free in steady state.
var linePool = sync.Pool{New: func() interface{} { return new([]float64) }}

//tme:noalloc
func getLine(n int) *[]float64 {
	p := linePool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n) //tmevet:ignore noalloc -- grow-once: reused via linePool in steady state
	}
	*p = (*p)[:n]
	return p
}

// lineGrain returns the per-chunk line count that keeps each parallel chunk
// at a few thousand flops, so short lines on small grids do not drown in
// goroutine overhead.
func lineGrain(flopsPerLine int) int {
	const targetFlops = 8192
	g := targetFlops / (flopsPerLine + 1)
	if g < 1 {
		g = 1
	}
	return g
}

// ConvAxis computes the periodic, range-limited 1D convolution of src with
// kernel along the given axis (0 = x, 1 = y, 2 = z) and stores the result in
// dst: dst[n] = Σ_{|m| ≤ gc} kernel[m+gc]·src[n−m]. kernel must have odd
// length 2·gc+1. dst must not alias src and must have the same shape.
func ConvAxis(dst, src *G, axis int, kernel []float64) {
	convAxis(dst, src, axis, kernel, false)
}

//tme:noalloc
func convAxis(dst, src *G, axis int, kernel []float64, accum bool) {
	if dst.N != src.N {
		panic("grid: ConvAxis shape mismatch")
	}
	if len(kernel)%2 == 0 {
		panic("grid: ConvAxis kernel length must be odd")
	}
	n, stride, bases := axisLoop(src.N, axis)
	grain := lineGrain(n * len(kernel))
	// Serial fast path with a direct call: no closure, so a GOMAXPROCS=1
	// steady state allocates nothing.
	if par.WorkersGrain(len(bases), grain) == 1 {
		convLines(dst, src, kernel, n, stride, bases, 0, len(bases), accum)
		return
	}
	par.ForRangeGrain(len(bases), grain, func(lo, hi int) {
		convLines(dst, src, kernel, n, stride, bases, lo, hi, accum)
	})
}

// convLines is the per-worker kernel of convAxis over lines [lo, hi).
//
//tme:noalloc
func convLines(dst, src *G, kernel []float64, n, stride int, bases []int, lo, hi int, accum bool) {
	gc := len(kernel) / 2
	// Per-worker scratch: the line padded with gc wrapped ghost cells on
	// each side, so the tap loop needs no modulo.
	lp := getLine(n + 2*gc)
	pad := *lp
	for li := lo; li < hi; li++ {
		base := bases[li]
		for k := range pad {
			pad[k] = src.Data[base+wrap(k-gc, n)*stride]
		}
		for i := 0; i < n; i++ {
			var s float64
			// pad[i-m+gc] == src line at wrap(i-m, n); ascending kernel
			// index keeps the serial summation order.
			row := pad[i : i+2*gc+1]
			for t := 0; t < 2*gc+1; t++ {
				s += kernel[t] * row[2*gc-t]
			}
			if accum {
				dst.Data[base+i*stride] += s
			} else {
				dst.Data[base+i*stride] = s
			}
		}
	}
	linePool.Put(lp)
}

// ConvSeparable computes the separable 3D convolution kz∗(ky∗(kx∗src)) and
// returns a new grid. This is the tensor-structured convolution at the heart
// of the TME method (paper Eq. (10)). Steady-state callers should prefer
// ConvSeparableInto/ConvSeparableAccum, which allocate nothing.
func ConvSeparable(src *G, kx, ky, kz []float64) *G {
	dst := New(src.N[0], src.N[1], src.N[2])
	tmp := New(src.N[0], src.N[1], src.N[2])
	ConvSeparableInto(dst, src, kx, ky, kz, tmp)
	return dst
}

// ConvSeparableInto computes the separable convolution into dst using tmp
// as scratch. dst, src and tmp must have equal shapes and must not alias
// each other.
//
//tme:noalloc
func ConvSeparableInto(dst, src *G, kx, ky, kz []float64, tmp *G) {
	convAxis(dst, src, 0, kx, false)
	convAxis(tmp, dst, 1, ky, false)
	convAxis(dst, tmp, 2, kz, false)
}

// ConvSeparableAccum accumulates the separable convolution into dst
// (dst += kz∗ky∗kx∗src) using the scratch pair t1, t2. All four grids must
// have equal shapes; dst, t1 and t2 must be pairwise distinct and distinct
// from src. This is the fused form core.Solver uses to sum the M Gaussian
// terms of a TME level into one output grid with zero allocations.
//
//tme:noalloc
func ConvSeparableAccum(dst, src *G, kx, ky, kz []float64, t1, t2 *G) {
	convAxis(t1, src, 0, kx, false)
	convAxis(t2, t1, 1, ky, false)
	convAxis(dst, t2, 2, kz, true)
}

// ConvDirect3D computes the periodic, range-limited direct 3D convolution
// dst[n] = Σ_{|m_j| ≤ gc} kernel(m)·src[n−m], where kernel is indexed
// kernel[(mx+gc) + (2gc+1)·((my+gc) + (2gc+1)·(mz+gc))]. This is the
// B-spline MSM convolution that the TME replaces; its cost is (2gc+1)³ per
// grid point versus the TME's 3·(2gc+1)·M.
func ConvDirect3D(src *G, kernel []float64, gc int) *G {
	dst := New(src.N[0], src.N[1], src.N[2])
	ConvDirect3DAccum(dst, src, kernel, gc, WrapTable(src.N[0], gc))
	return dst
}

// WrapTable returns the periodic x-index lookup table of the direct 3D
// convolution: table[i] = wrap(i−gc, n) for i ∈ [0, n+2gc). Steady-state
// callers build it once per grid size at construction and hand it to
// ConvDirect3DAccum so the hot path allocates nothing.
func WrapTable(n, gc int) []int {
	t := make([]int, n+2*gc)
	for i := range t {
		t[i] = wrap(i-gc, n)
	}
	return t
}

// ConvDirect3DAccum accumulates the periodic, range-limited direct 3D
// convolution into dst: dst[n] += Σ_{|m_j| ≤ gc} kernel(m)·src[n−m].
// dst and src must have equal shapes and must not alias; wx must be
// WrapTable(nx, gc). This is the allocation-free form msm.Solver uses.
//
//tme:noalloc
func ConvDirect3DAccum(dst, src *G, kernel []float64, gc int, wx []int) {
	k := 2*gc + 1
	if len(kernel) != k*k*k {
		panic("grid: ConvDirect3DAccum kernel size mismatch")
	}
	nx, ny, nz := src.N[0], src.N[1], src.N[2]
	if dst.N != src.N {
		panic("grid: ConvDirect3DAccum shape mismatch")
	}
	if len(wx) != nx+2*gc {
		panic("grid: ConvDirect3DAccum wrap-table length mismatch")
	}
	// Each output x-line (iy, iz) is independent: gather-only, so any
	// partition over lines is bitwise deterministic.
	grain := lineGrain(nx * k * k * k)
	// Serial fast path with a direct call: no closure, so a GOMAXPROCS=1
	// steady state allocates nothing.
	if par.WorkersGrain(ny*nz, grain) == 1 {
		convDirectLines(dst, src, kernel, gc, wx, 0, ny*nz)
		return
	}
	par.ForRangeGrain(ny*nz, grain, func(lo, hi int) {
		convDirectLines(dst, src, kernel, gc, wx, lo, hi)
	})
}

// convDirectLines accumulates the direct convolution for the output
// x-lines [lo, hi). The inner loop reads srow[wx[ix-mx+gc]] — the lookup
// table replaces the per-tap modulo.
//
//tme:noalloc
func convDirectLines(dst, src *G, kernel []float64, gc int, wx []int, lo, hi int) {
	k := 2*gc + 1
	nx, ny, nz := src.N[0], src.N[1], src.N[2]
	for line := lo; line < hi; line++ {
		iy := line % ny
		iz := line / ny
		out := dst.Data[nx*(iy+ny*iz) : nx*(iy+ny*iz)+nx]
		for ix := 0; ix < nx; ix++ {
			var s float64
			for mz := -gc; mz <= gc; mz++ {
				jz := wrap(iz-mz, nz)
				for my := -gc; my <= gc; my++ {
					jy := wrap(iy-my, ny)
					krow := k * ((my + gc) + k*(mz+gc))
					srow := src.Data[nx*(jy+ny*jz) : nx*(jy+ny*jz)+nx]
					for mx := -gc; mx <= gc; mx++ {
						s += kernel[(mx+gc)+krow] * srow[wx[ix-mx+gc]]
					}
				}
			}
			out[ix] += s
		}
	}
}

// Restrict applies the two-scale restriction along all three axes:
// dst[n] = Σ_m J[m]·src[2n+m] per axis, halving each dimension (all must be
// even). J is indexed J[m+p/2] for m = −p/2..p/2 (see bspline.TwoScale).
func Restrict(src *G, J []float64) *G {
	cur := src
	for axis := 0; axis < 3; axis++ {
		dn := cur.N
		dn[axis] /= 2
		dst := New(dn[0], dn[1], dn[2])
		restrictAxisInto(dst, cur, axis, J)
		cur = dst
	}
	return cur
}

// RestrictInto computes the three-axis restriction into dst (shape src.N/2),
// drawing the two intermediate grids from pool.
func RestrictInto(dst, src *G, J []float64, pool *Pool) {
	n := src.N
	t1 := pool.Get([3]int{n[0] / 2, n[1], n[2]})
	restrictAxisInto(t1, src, 0, J)
	t2 := pool.Get([3]int{n[0] / 2, n[1] / 2, n[2]})
	restrictAxisInto(t2, t1, 1, J)
	pool.Put(t1)
	restrictAxisInto(dst, t2, 2, J)
	pool.Put(t2)
}

// RestrictAxisInto applies the two-scale restriction along a single axis:
// dst[n] = Σ_m J[m]·src[2n+m] on that axis (dst shape = src shape with the
// axis halved). Exposed for slab-decomposed pipelines (internal/dist) that
// run the x/y passes locally on their owned z-planes; the per-line
// arithmetic is identical to RestrictInto's, so plane-subset results are
// bitwise equal to the corresponding planes of a full-grid restriction.
func RestrictAxisInto(dst, src *G, axis int, J []float64) {
	restrictAxisInto(dst, src, axis, J)
}

// ProlongAxisInto applies the two-scale prolongation along a single axis:
// dst[k] = Σ_n J[k−2n]·src[n] on that axis (dst shape = src shape with the
// axis doubled). Exposed for the same slab-decomposed x/y passes as
// RestrictAxisInto.
func ProlongAxisInto(dst, src *G, axis int, J []float64) {
	prolongAxisInto(dst, src, axis, J)
}

func restrictAxisInto(dst, src *G, axis int, J []float64) {
	half := len(J) / 2
	n := src.N[axis]
	if n%2 != 0 {
		panic("grid: Restrict needs even dimensions")
	}
	want := src.N
	want[axis] = n / 2
	if dst.N != want {
		panic("grid: Restrict destination shape mismatch")
	}
	_, sStride, sBases := axisLoop(src.N, axis)
	_, dStride, dBases := axisLoop(dst.N, axis)
	grain := lineGrain(n / 2 * (2*half + 1))
	if par.WorkersGrain(len(sBases), grain) == 1 {
		restrictLines(dst, src, J, n, sStride, dStride, sBases, dBases, 0, len(sBases))
		return
	}
	par.ForRangeGrain(len(sBases), grain, func(lo, hi int) {
		restrictLines(dst, src, J, n, sStride, dStride, sBases, dBases, lo, hi)
	})
}

// restrictLines is the per-worker kernel of restrictAxisInto.
func restrictLines(dst, src *G, J []float64, n, sStride, dStride int, sBases, dBases []int, lo, hi int) {
	half := len(J) / 2
	nj := 2*half + 1
	// Padded source line: pad[k] = src line at wrap(k-half, n).
	lp := getLine(n + 2*half)
	pad := *lp
	for li := lo; li < hi; li++ {
		sb, db := sBases[li], dBases[li]
		for k := range pad {
			pad[k] = src.Data[sb+wrap(k-half, n)*sStride]
		}
		for i := 0; i < n/2; i++ {
			var s float64
			// pad[2i+m+half]; m ascending matches the serial order.
			row := pad[2*i : 2*i+nj]
			for m := 0; m < nj; m++ {
				s += J[m] * row[m]
			}
			dst.Data[db+i*dStride] = s
		}
	}
	linePool.Put(lp)
}

// Prolong applies the two-scale prolongation along all three axes:
// dst[k] = Σ_n J[k−2n]·src[n] per axis, doubling each dimension. Prolong is
// the adjoint of Restrict.
func Prolong(src *G, J []float64) *G {
	cur := src
	for axis := 0; axis < 3; axis++ {
		dn := cur.N
		dn[axis] *= 2
		dst := New(dn[0], dn[1], dn[2])
		prolongAxisInto(dst, cur, axis, J)
		cur = dst
	}
	return cur
}

// ProlongInto computes the three-axis prolongation into dst (shape 2·src.N),
// drawing the two intermediate grids from pool.
func ProlongInto(dst, src *G, J []float64, pool *Pool) {
	n := src.N
	t1 := pool.Get([3]int{n[0] * 2, n[1], n[2]})
	prolongAxisInto(t1, src, 0, J)
	t2 := pool.Get([3]int{n[0] * 2, n[1] * 2, n[2]})
	prolongAxisInto(t2, t1, 1, J)
	pool.Put(t1)
	prolongAxisInto(dst, t2, 2, J)
	pool.Put(t2)
}

func prolongAxisInto(dst, src *G, axis int, J []float64) {
	half := len(J) / 2
	n := src.N[axis]
	want := src.N
	want[axis] = n * 2
	if dst.N != want {
		panic("grid: Prolong destination shape mismatch")
	}
	_, sStride, sBases := axisLoop(src.N, axis)
	_, dStride, dBases := axisLoop(dst.N, axis)
	grain := lineGrain(n * (2*half + 1))
	if par.WorkersGrain(len(sBases), grain) == 1 {
		prolongLines(dst, src, J, n, sStride, dStride, sBases, dBases, 0, len(sBases))
		return
	}
	par.ForRangeGrain(len(sBases), grain, func(lo, hi int) {
		prolongLines(dst, src, J, n, sStride, dStride, sBases, dBases, lo, hi)
	})
}

// prolongLines is the per-worker kernel of prolongAxisInto.
func prolongLines(dst, src *G, J []float64, n, sStride, dStride int, sBases, dBases []int, lo, hi int) {
	half := len(J) / 2
	for li := lo; li < hi; li++ {
		sb, db := sBases[li], dBases[li]
		// Each source line scatters only into its own destination line,
		// so lines stay independent; clear it first because dst may be
		// recycled scratch.
		for k := 0; k < 2*n; k++ {
			dst.Data[db+k*dStride] = 0
		}
		for i := 0; i < n; i++ {
			v := src.Data[sb+i*sStride]
			if v == 0 {
				continue
			}
			for m := -half; m <= half; m++ {
				k := wrap(2*i+m, 2*n)
				dst.Data[db+k*dStride] += J[m+half] * v
			}
		}
	}
}
