// Package grid provides periodic 3D scalar grids and the grid-to-grid
// operations of multilevel mesh methods: axis-wise (separable) convolutions,
// range-limited direct 3D convolutions, and the two-scale restriction and
// prolongation operators.
//
// Data is stored in a flat slice, x-fastest: index = ix + Nx·(iy + Ny·iz),
// matching the layout of internal/fft.Plan3.
package grid

import "fmt"

// G is a periodic 3D scalar grid.
type G struct {
	N    [3]int
	Data []float64
}

// New returns a zeroed nx×ny×nz grid.
func New(nx, ny, nz int) *G {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("grid: invalid dimensions %d×%d×%d", nx, ny, nz))
	}
	return &G{N: [3]int{nx, ny, nz}, Data: make([]float64, nx*ny*nz)}
}

// Len returns the total number of grid points.
func (g *G) Len() int { return g.N[0] * g.N[1] * g.N[2] }

// Idx returns the flat index of (ix, iy, iz), which must be in range.
func (g *G) Idx(ix, iy, iz int) int { return ix + g.N[0]*(iy+g.N[1]*iz) }

// WrapIdx returns the flat index of (ix, iy, iz) with periodic wrapping.
func (g *G) WrapIdx(ix, iy, iz int) int {
	return wrap(ix, g.N[0]) + g.N[0]*(wrap(iy, g.N[1])+g.N[1]*wrap(iz, g.N[2]))
}

// At returns the value at (ix, iy, iz) with periodic wrapping.
func (g *G) At(ix, iy, iz int) float64 { return g.Data[g.WrapIdx(ix, iy, iz)] }

// Set stores v at (ix, iy, iz) with periodic wrapping.
func (g *G) Set(ix, iy, iz int, v float64) { g.Data[g.WrapIdx(ix, iy, iz)] = v }

// Add accumulates v at (ix, iy, iz) with periodic wrapping.
func (g *G) Add(ix, iy, iz int, v float64) { g.Data[g.WrapIdx(ix, iy, iz)] += v }

// Zero clears the grid.
func (g *G) Zero() {
	for i := range g.Data {
		g.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (g *G) Clone() *G {
	c := New(g.N[0], g.N[1], g.N[2])
	copy(c.Data, g.Data)
	return c
}

// AddGrid accumulates src into g; shapes must match.
func (g *G) AddGrid(src *G) {
	if g.N != src.N {
		panic("grid: AddGrid shape mismatch")
	}
	for i, v := range src.Data {
		g.Data[i] += v
	}
}

// Scale multiplies every point by s.
func (g *G) Scale(s float64) {
	for i := range g.Data {
		g.Data[i] *= s
	}
}

// Sum returns the sum over all grid points.
func (g *G) Sum() float64 {
	var s float64
	for _, v := range g.Data {
		s += v
	}
	return s
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// axisLoop describes iteration over all 1D lines along one axis: n is the
// line length, stride the flat-index step along the axis, and bases the flat
// index of the first element of every line.
func axisLoop(n3 [3]int, axis int) (n, stride int, bases []int) {
	nx, ny, nz := n3[0], n3[1], n3[2]
	switch axis {
	case 0:
		n, stride = nx, 1
		bases = make([]int, 0, ny*nz)
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				bases = append(bases, nx*(y+ny*z))
			}
		}
	case 1:
		n, stride = ny, nx
		bases = make([]int, 0, nx*nz)
		for z := 0; z < nz; z++ {
			for x := 0; x < nx; x++ {
				bases = append(bases, x+nx*ny*z)
			}
		}
	case 2:
		n, stride = nz, nx*ny
		bases = make([]int, 0, nx*ny)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				bases = append(bases, x+nx*y)
			}
		}
	default:
		panic("grid: invalid axis")
	}
	return n, stride, bases
}

// ConvAxis computes the periodic, range-limited 1D convolution of src with
// kernel along the given axis (0 = x, 1 = y, 2 = z) and stores the result in
// dst: dst[n] = Σ_{|m| ≤ gc} kernel[m+gc]·src[n−m]. kernel must have odd
// length 2·gc+1. dst must not alias src and must have the same shape.
func ConvAxis(dst, src *G, axis int, kernel []float64) {
	if dst.N != src.N {
		panic("grid: ConvAxis shape mismatch")
	}
	if len(kernel)%2 == 0 {
		panic("grid: ConvAxis kernel length must be odd")
	}
	gc := len(kernel) / 2
	n, stride, bases := axisLoop(src.N, axis)
	line := make([]float64, n)
	for _, base := range bases {
		for i := 0; i < n; i++ {
			line[i] = src.Data[base+i*stride]
		}
		for i := 0; i < n; i++ {
			var s float64
			for m := -gc; m <= gc; m++ {
				s += kernel[m+gc] * line[wrap(i-m, n)]
			}
			dst.Data[base+i*stride] = s
		}
	}
}

// ConvSeparable computes the separable 3D convolution kz∗(ky∗(kx∗src)) and
// returns a new grid. This is the tensor-structured convolution at the heart
// of the TME method (paper Eq. (10)).
func ConvSeparable(src *G, kx, ky, kz []float64) *G {
	tmp1 := New(src.N[0], src.N[1], src.N[2])
	tmp2 := New(src.N[0], src.N[1], src.N[2])
	ConvAxis(tmp1, src, 0, kx)
	ConvAxis(tmp2, tmp1, 1, ky)
	ConvAxis(tmp1, tmp2, 2, kz)
	return tmp1
}

// ConvDirect3D computes the periodic, range-limited direct 3D convolution
// dst[n] = Σ_{|m_j| ≤ gc} kernel(m)·src[n−m], where kernel is indexed
// kernel[(mx+gc) + (2gc+1)·((my+gc) + (2gc+1)·(mz+gc))]. This is the
// B-spline MSM convolution that the TME replaces; its cost is (2gc+1)³ per
// grid point versus the TME's 3·(2gc+1)·M.
func ConvDirect3D(src *G, kernel []float64, gc int) *G {
	k := 2*gc + 1
	if len(kernel) != k*k*k {
		panic("grid: ConvDirect3D kernel size mismatch")
	}
	dst := New(src.N[0], src.N[1], src.N[2])
	nx, ny, nz := src.N[0], src.N[1], src.N[2]
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				var s float64
				for mz := -gc; mz <= gc; mz++ {
					jz := wrap(iz-mz, nz)
					for my := -gc; my <= gc; my++ {
						jy := wrap(iy-my, ny)
						krow := k * ((my + gc) + k*(mz+gc))
						srow := src.Data[nx*(jy+ny*jz) : nx*(jy+ny*jz)+nx]
						for mx := -gc; mx <= gc; mx++ {
							s += kernel[(mx+gc)+krow] * srow[wrap(ix-mx, nx)]
						}
					}
				}
				dst.Data[dst.Idx(ix, iy, iz)] = s
			}
		}
	}
	return dst
}

// Restrict applies the two-scale restriction along all three axes:
// dst[n] = Σ_m J[m]·src[2n+m] per axis, halving each dimension (all must be
// even). J is indexed J[m+p/2] for m = −p/2..p/2 (see bspline.TwoScale).
func Restrict(src *G, J []float64) *G {
	cur := src
	for axis := 0; axis < 3; axis++ {
		cur = restrictAxis(cur, axis, J)
	}
	return cur
}

func restrictAxis(src *G, axis int, J []float64) *G {
	half := len(J) / 2
	n := src.N[axis]
	if n%2 != 0 {
		panic("grid: Restrict needs even dimensions")
	}
	dn := src.N
	dn[axis] = n / 2
	dst := New(dn[0], dn[1], dn[2])
	_, sStride, sBases := axisLoop(src.N, axis)
	_, dStride, dBases := axisLoop(dst.N, axis)
	for li := range sBases {
		sb, db := sBases[li], dBases[li]
		for i := 0; i < n/2; i++ {
			var s float64
			for m := -half; m <= half; m++ {
				s += J[m+half] * src.Data[sb+wrap(2*i+m, n)*sStride]
			}
			dst.Data[db+i*dStride] = s
		}
	}
	return dst
}

// Prolong applies the two-scale prolongation along all three axes:
// dst[k] = Σ_n J[k−2n]·src[n] per axis, doubling each dimension. Prolong is
// the adjoint of Restrict.
func Prolong(src *G, J []float64) *G {
	cur := src
	for axis := 0; axis < 3; axis++ {
		cur = prolongAxis(cur, axis, J)
	}
	return cur
}

func prolongAxis(src *G, axis int, J []float64) *G {
	half := len(J) / 2
	n := src.N[axis]
	dn := src.N
	dn[axis] = n * 2
	dst := New(dn[0], dn[1], dn[2])
	_, sStride, sBases := axisLoop(src.N, axis)
	_, dStride, dBases := axisLoop(dst.N, axis)
	for li := range sBases {
		sb, db := sBases[li], dBases[li]
		for i := 0; i < n; i++ {
			v := src.Data[sb+i*sStride]
			if v == 0 {
				continue
			}
			for m := -half; m <= half; m++ {
				k := wrap(2*i+m, 2*n)
				dst.Data[db+k*dStride] += J[m+half] * v
			}
		}
	}
	return dst
}
