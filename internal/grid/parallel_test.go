package grid

// Serial-vs-parallel bitwise equivalence of the grid operators. Every
// operator is parallelized over independent 1D lines with unchanged
// per-line arithmetic, so results must be bitwise identical at any
// GOMAXPROCS.

import (
	"math/rand"
	"runtime"
	"testing"

	"tme4a/internal/bspline"
)

func withGOMAXPROCS(p int, fn func()) {
	old := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(old)
	fn()
}

func assertBitwise(t *testing.T, name string, a, b *G) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("%s: shape mismatch %v vs %v", name, a.N, b.N)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: differs at %d: %.17g vs %.17g", name, i, a.Data[i], b.Data[i])
		}
	}
}

func randKernel(rng *rand.Rand, gc int) []float64 {
	k := make([]float64, 2*gc+1)
	for i := range k {
		k[i] = rng.NormFloat64()
	}
	return k
}

func TestGridOpsBitwiseAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := randGrid(rng, 16, 12, 8)
	kx := randKernel(rng, 5)
	ky := randKernel(rng, 5)
	kz := randKernel(rng, 5)
	gc := 2
	k3 := make([]float64, (2*gc+1)*(2*gc+1)*(2*gc+1))
	for i := range k3 {
		k3[i] = rng.NormFloat64()
	}
	J := bspline.TwoScale(6)

	type out struct{ sep, dir, res, pro *G }
	run := func() out {
		return out{
			sep: ConvSeparable(src, kx, ky, kz),
			dir: ConvDirect3D(src, k3, gc),
			res: Restrict(src, J),
			pro: Prolong(src, J),
		}
	}
	var serial, parallel out
	withGOMAXPROCS(1, func() { serial = run() })
	withGOMAXPROCS(4, func() { parallel = run() })
	assertBitwise(t, "ConvSeparable", serial.sep, parallel.sep)
	assertBitwise(t, "ConvDirect3D", serial.dir, parallel.dir)
	assertBitwise(t, "Restrict", serial.res, parallel.res)
	assertBitwise(t, "Prolong", serial.pro, parallel.pro)
}

func TestConvSeparableIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	src := randGrid(rng, 8, 8, 8)
	kx, ky, kz := randKernel(rng, 3), randKernel(rng, 3), randKernel(rng, 3)
	want := ConvSeparable(src, kx, ky, kz)

	dst := New(8, 8, 8)
	tmp := New(8, 8, 8)
	ConvSeparableInto(dst, src, kx, ky, kz, tmp)
	assertBitwise(t, "ConvSeparableInto", want, dst)
}

func TestConvSeparableAccumSumsGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := randGrid(rng, 8, 8, 8)
	const m = 3
	var kx, ky, kz [m][]float64
	for v := 0; v < m; v++ {
		kx[v], ky[v], kz[v] = randKernel(rng, 3), randKernel(rng, 3), randKernel(rng, 3)
	}
	// Reference: allocate-and-add, the pre-refactor levelConv structure.
	want := ConvSeparable(src, kx[0], ky[0], kz[0])
	for v := 1; v < m; v++ {
		want.AddGrid(ConvSeparable(src, kx[v], ky[v], kz[v]))
	}

	dst := New(8, 8, 8)
	t1 := New(8, 8, 8)
	t2 := New(8, 8, 8)
	for v := 0; v < m; v++ {
		ConvSeparableAccum(dst, src, kx[v], ky[v], kz[v], t1, t2)
	}
	assertBitwise(t, "ConvSeparableAccum", want, dst)
}

func TestRestrictProlongIntoMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	J := bspline.TwoScale(6)
	pool := NewPool()

	src := randGrid(rng, 16, 8, 12)
	want := Restrict(src, J)
	dst := pool.Get([3]int{8, 4, 6})
	RestrictInto(dst, src, J, pool)
	assertBitwise(t, "RestrictInto", want, dst)

	up := randGrid(rng, 8, 4, 6)
	wantP := Prolong(up, J)
	// Deliberately dirty destination: ProlongInto must fully overwrite.
	dstP := pool.Get([3]int{16, 8, 12})
	for i := range dstP.Data {
		dstP.Data[i] = 1e9
	}
	ProlongInto(dstP, up, J, pool)
	assertBitwise(t, "ProlongInto", wantP, dstP)
}

func TestPoolReusesGrids(t *testing.T) {
	pool := NewPool()
	a := pool.Get([3]int{4, 4, 4})
	pool.Put(a)
	b := pool.Get([3]int{4, 4, 4})
	if a != b {
		t.Error("pool did not recycle the grid")
	}
	c := pool.Get([3]int{4, 4, 4})
	if c == b {
		t.Error("pool handed out the same grid twice")
	}
	if pool.Get([3]int{2, 2, 2}).N != [3]int{2, 2, 2} {
		t.Error("pool returned wrong shape")
	}
}

// TestConvSeparableSteadyStateAllocFree verifies the zero-allocation claim
// of the fused path at GOMAXPROCS=1 (with more workers, the goroutine
// spawns themselves allocate a fixed few hundred bytes).
func TestConvSeparableSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(25))
	src := randGrid(rng, 16, 16, 16)
	k := randKernel(rng, 8)
	dst := New(16, 16, 16)
	t1 := New(16, 16, 16)
	t2 := New(16, 16, 16)
	withGOMAXPROCS(1, func() {
		// Warm the line-scratch pool.
		ConvSeparableAccum(dst, src, k, k, k, t1, t2)
		allocs := testing.AllocsPerRun(10, func() {
			ConvSeparableAccum(dst, src, k, k, k, t1, t2)
		})
		if allocs > 0.5 {
			t.Errorf("ConvSeparableAccum allocates %.1f objects per run, want 0", allocs)
		}
	})
}
