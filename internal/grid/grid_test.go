package grid

import (
	"math"
	"math/rand"
	"testing"

	"tme4a/internal/bspline"
)

func randGrid(rng *rand.Rand, nx, ny, nz int) *G {
	g := New(nx, ny, nz)
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	return g
}

func naiveConvAxis(src *G, axis int, kernel []float64) *G {
	gc := len(kernel) / 2
	dst := New(src.N[0], src.N[1], src.N[2])
	for iz := 0; iz < src.N[2]; iz++ {
		for iy := 0; iy < src.N[1]; iy++ {
			for ix := 0; ix < src.N[0]; ix++ {
				var s float64
				for m := -gc; m <= gc; m++ {
					var v float64
					switch axis {
					case 0:
						v = src.At(ix-m, iy, iz)
					case 1:
						v = src.At(ix, iy-m, iz)
					default:
						v = src.At(ix, iy, iz-m)
					}
					s += kernel[m+gc] * v
				}
				dst.Data[dst.Idx(ix, iy, iz)] = s
			}
		}
	}
	return dst
}

func TestConvAxisMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := randGrid(rng, 8, 6, 4)
	kernel := []float64{0.1, -0.4, 1.0, 0.3, 0.2}
	for axis := 0; axis < 3; axis++ {
		want := naiveConvAxis(src, axis, kernel)
		got := New(8, 6, 4)
		ConvAxis(got, src, axis, kernel)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
				t.Fatalf("axis %d index %d: got %g want %g", axis, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestConvAxisKernelLongerThanGrid(t *testing.T) {
	// Periodic wrap must be correct even when the kernel reach exceeds the
	// grid size (small top-level TME grids with g_c = 8).
	rng := rand.New(rand.NewSource(2))
	src := randGrid(rng, 4, 4, 4)
	kernel := make([]float64, 2*6+1)
	for i := range kernel {
		kernel[i] = rng.NormFloat64()
	}
	want := naiveConvAxis(src, 0, kernel)
	got := New(4, 4, 4)
	ConvAxis(got, src, 0, kernel)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("index %d: got %g want %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestSeparableEqualsDirect verifies the tensor-structure identity at the
// heart of the TME: a separable 3D kernel applied axis-wise equals the
// direct 3D convolution with the outer-product kernel.
func TestSeparableEqualsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randGrid(rng, 8, 8, 8)
	gc := 2
	k := 2*gc + 1
	kx := make([]float64, k)
	ky := make([]float64, k)
	kz := make([]float64, k)
	for i := 0; i < k; i++ {
		kx[i], ky[i], kz[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
	}
	k3 := make([]float64, k*k*k)
	for mz := 0; mz < k; mz++ {
		for my := 0; my < k; my++ {
			for mx := 0; mx < k; mx++ {
				k3[mx+k*(my+k*mz)] = kx[mx] * ky[my] * kz[mz]
			}
		}
	}
	sep := ConvSeparable(src, kx, ky, kz)
	dir := ConvDirect3D(src, k3, gc)
	for i := range sep.Data {
		if math.Abs(sep.Data[i]-dir.Data[i]) > 1e-10 {
			t.Fatalf("index %d: separable %g direct %g", i, sep.Data[i], dir.Data[i])
		}
	}
}

func TestConvIdentityKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randGrid(rng, 4, 8, 16)
	id := []float64{0, 0, 1, 0, 0}
	got := ConvSeparable(src, id, id, id)
	for i := range src.Data {
		if math.Abs(got.Data[i]-src.Data[i]) > 1e-14 {
			t.Fatalf("identity convolution altered data at %d", i)
		}
	}
}

func TestRestrictProlongAdjoint(t *testing.T) {
	// ⟨Restrict(q), φ⟩ == ⟨q, Prolong(φ)⟩ for the two-scale operators.
	rng := rand.New(rand.NewSource(5))
	J := bspline.TwoScale(6)
	q := randGrid(rng, 8, 8, 8)
	phi := randGrid(rng, 4, 4, 4)
	rq := Restrict(q, J)
	pphi := Prolong(phi, J)
	var lhs, rhs float64
	for i := range rq.Data {
		lhs += rq.Data[i] * phi.Data[i]
	}
	for i := range q.Data {
		rhs += q.Data[i] * pphi.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-10*math.Abs(lhs) {
		t.Errorf("adjoint violated: %g vs %g", lhs, rhs)
	}
}

func TestRestrictConservesTotalWeightedCharge(t *testing.T) {
	// ΣJ = 2 per axis, so total grid charge is multiplied by 2³/2³... each
	// axis restriction halves the point count but ΣJ=2 doubles weight per
	// remaining point: the total sum is preserved exactly... verify the
	// actual invariant: Sum(Restrict(q)) = Sum(q).
	rng := rand.New(rand.NewSource(6))
	J := bspline.TwoScale(6)
	q := randGrid(rng, 16, 8, 8)
	r := Restrict(q, J)
	if r.N != [3]int{8, 4, 4} {
		t.Fatalf("restricted shape %v", r.N)
	}
	if math.Abs(r.Sum()-q.Sum()) > 1e-9*math.Max(1, math.Abs(q.Sum())) {
		t.Errorf("restriction changed total charge: %g vs %g", r.Sum(), q.Sum())
	}
}

func TestProlongShape(t *testing.T) {
	J := bspline.TwoScale(4)
	src := New(4, 8, 4)
	dst := Prolong(src, J)
	if dst.N != [3]int{8, 16, 8} {
		t.Errorf("prolonged shape %v", dst.N)
	}
}

func TestWrapIndexing(t *testing.T) {
	g := New(4, 4, 4)
	g.Set(-1, -1, -1, 7)
	if g.At(3, 3, 3) != 7 {
		t.Error("negative wrap failed")
	}
	g.Add(4, 5, 6, 3)
	if g.At(0, 1, 2) != 3 {
		t.Error("positive wrap failed")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2, 2, 2)
	g.Data[0] = 1
	c := g.Clone()
	c.Data[0] = 2
	if g.Data[0] != 1 {
		t.Error("Clone aliases source data")
	}
}

func BenchmarkConvSeparable32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randGrid(rng, 32, 32, 32)
	k := make([]float64, 17)
	for i := range k {
		k[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvSeparable(src, k, k, k)
	}
}

func BenchmarkConvDirect3D32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src := randGrid(rng, 32, 32, 32)
	gc := 8
	n := 2*gc + 1
	k3 := make([]float64, n*n*n)
	for i := range k3 {
		k3[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvDirect3D(src, k3, gc)
	}
}
