//go:build !race

package grid

const raceEnabled = false
