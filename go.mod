module tme4a

go 1.22
