// Package tme4a is a from-scratch Go reproduction of "Hardware
// Acceleration of Tensor-Structured Multilevel Ewald Summation Method on
// MDGRAPE-4A" (Morimoto et al., SC '21): the TME long-range electrostatics
// algorithm, its SPME and B-spline-MSM comparators, a complete molecular-
// dynamics engine, and a functional + timing model of the MDGRAPE-4A
// special-purpose machine (LRU, GCU, 3D torus, TMENW octree, FPGA FFT).
//
// The library lives under internal/; the runnable surfaces are the
// examples/ programs, the cmd/tmebench experiment harness that regenerates
// every table and figure of the paper, and the top-level benchmarks in
// bench_test.go. See README.md, DESIGN.md and EXPERIMENTS.md.
package tme4a
