#!/bin/sh
# Tier-1 gate: vet, build, full test suite, then the race detector over the
# parallelized packages (grid ops, particle mesh, FFT, TME core, SPME, par,
# and the short-range stack: cell list, nonbond, md), and a one-iteration
# benchmark smoke so the benchmarks themselves cannot rot.
# Run from the repo root:  ./tier1.sh
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/par/ ./internal/grid/ ./internal/pmesh/ \
	./internal/fft/ ./internal/spme/ ./internal/core/ \
	./internal/celllist/ ./internal/nonbond/
go test -race -short ./internal/md/
go test -run '^$' -bench . -benchtime 1x . ./internal/nonbond/ > /dev/null
