#!/bin/sh
# Tier-1 gate: formatting, vet, the tmevet invariant linter, build, full
# test suite, then the race detector over the parallelized packages (grid
# ops, particle mesh, FFT, TME core, SPME, par, the short-range stack:
# cell list, nonbond, md, the bonded/constraint/summation packages, the
# obs stage recorder whose atomic slots every parallel stage touches, the
# quadrature tables and the solver registry whose round-trip tests drive
# every registered method's parallel pipeline),
# and a one-iteration benchmark smoke so the benchmarks themselves cannot
# rot. A 30-second fuzz smoke of the snapshot decoder keeps the
# checkpoint/restart attack surface (arbitrary bytes into GobDecode)
# continuously exercised beyond the committed seed corpus.
# Run from the repo root:  ./tier1.sh
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go run ./cmd/tmevet ./...
go build ./...
go test ./...
go test -race ./internal/par/ ./internal/grid/ ./internal/pmesh/ \
	./internal/fft/ ./internal/spme/ ./internal/core/ \
	./internal/celllist/ ./internal/nonbond/ \
	./internal/ewald/ ./internal/msm/ ./internal/bonded/ \
	./internal/constraint/ ./internal/obs/ ./internal/ckpt/ \
	./internal/quad/ ./internal/solver/
go test -race -short ./internal/md/ ./internal/expt/
go test -run '^$' -fuzz '^FuzzSnapshotDecode$' -fuzztime 30s ./internal/md/
go test -run '^$' -bench . -benchtime 1x . ./internal/nonbond/ > /dev/null
