#!/bin/sh
# Tier-1 gate: vet, build, full test suite, then the race detector over the
# parallelized packages (grid ops, particle mesh, FFT, TME core, SPME, par).
# Run from the repo root:  ./tier1.sh
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/par/ ./internal/grid/ ./internal/pmesh/ \
	./internal/fft/ ./internal/spme/ ./internal/core/
