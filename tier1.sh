#!/bin/sh
# Tier-1 gate: formatting, vet, the tmevet invariant linter, build, full
# test suite, then the race detector over the parallelized packages (grid
# ops, particle mesh, FFT, TME core, SPME, par, the short-range stack:
# cell list, nonbond, md, the bonded/constraint/summation packages, the
# obs stage recorder whose atomic slots every parallel stage touches, the
# quadrature tables, the solver registry whose round-trip tests drive
# every registered method's parallel pipeline, the serve tier whose
# scheduler loop shares the job table with concurrent API readers, the
# dist halo-exchange layer, and the rank engine whose short equivalence
# matrix re-proves the bitwise rank-count invariance under the race
# detector every run, and the auto-tuner whose monitor the retune loop
# shares with the recorder), and a one-iteration benchmark smoke so the
# benchmarks themselves cannot rot. Fuzz smokes of the snapshot decoder
# (30s), the job-spec decoder (15s), the halo partition (10s) and the
# tuner's plan request (10s) keep the byte-level attack surfaces
# (arbitrary bytes into GobDecode, arbitrary JSON into the daemon,
# arbitrary geometry into the halo planner and the planner) continuously
# exercised beyond the committed seed corpora. A 20-step mdrun -tune run
# smokes the planner-to-engine wiring end to end.
# tmevet runs with the committed baseline (grandfathered noalloc-ipa
# findings in the deep engine, see DESIGN.md §7.8): any NEW finding fails
# the gate, and the deterministic JSON report lands in tmevet.json for CI
# to archive. A 10s fuzz smoke of the suppression-directive parser guards
# the one piece of comment grammar that can silence every other check.
# Run from the repo root:  ./tier1.sh
set -eux

test -z "$(gofmt -l .)"
go vet ./...
go run ./cmd/tmevet -baseline tmevet.baseline.json -json ./... > tmevet.json
go build ./...
go test ./...
go test -race ./internal/par/ ./internal/grid/ ./internal/pmesh/ \
	./internal/fft/ ./internal/spme/ ./internal/core/ \
	./internal/celllist/ ./internal/nonbond/ \
	./internal/ewald/ ./internal/msm/ ./internal/bonded/ \
	./internal/constraint/ ./internal/obs/ ./internal/ckpt/ \
	./internal/quad/ ./internal/solver/ ./internal/tune/ \
	./internal/serve/ ./internal/serve/loadgen/ ./internal/dist/
go test -race -short ./internal/md/ ./internal/expt/ ./internal/rank/
go test -run '^$' -fuzz '^FuzzSnapshotDecode$' -fuzztime 30s ./internal/md/
go test -run '^$' -fuzz '^FuzzJobSpecDecode$' -fuzztime 15s ./internal/serve/
go test -run '^$' -fuzz '^FuzzHaloPartition$' -fuzztime 10s ./internal/dist/
go test -run '^$' -fuzz '^FuzzIgnoreDirective$' -fuzztime 10s ./internal/lint/
go test -run '^$' -fuzz '^FuzzPlanRequest$' -fuzztime 10s ./internal/tune/
go run ./cmd/mdrun -tune -errbudget 1e-3 -side 5 -steps 20 -report 10
go test -run '^$' -bench . -benchtime 1x . ./internal/nonbond/ > /dev/null
