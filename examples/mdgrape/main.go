// MDGRAPE: drive the full machine model. Builds the paper's 80,540-atom
// protein/water benchmark, simulates one MD step on the 512-node machine
// (printing the Fig. 9 time chart and Fig. 10 long-range breakdown), and
// validates the fixed-point hardware datapath against the double-precision
// TME solver on a water box.
//
// Run with: go run ./examples/mdgrape
package main

import (
	"fmt"
	"math"
	"os"

	"tme4a/internal/core"
	"tme4a/internal/expt"
	"tme4a/internal/hw/machine"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

func main() {
	hw := expt.NewHWContext()
	fmt.Println("=== Fig 9: single-step time chart (simulated MDGRAPE-4A) ===")
	hw.RunFig9(os.Stdout)
	fmt.Println("\n=== Fig 10: long-range phase breakdown ===")
	hw.RunFig10(os.Stdout)

	fmt.Println("\n=== hardware datapath vs double precision ===")
	// A 9.97 nm water box gives the hardware grid sizes: 32³ finest,
	// 16³ top level (the FPGA's fixed FFT size).
	const side = 12 // 1,728 waters is enough to exercise every grid point
	box := water.CubicBoxFor(32768)
	sys := water.Build(side, side, side, box, 3)
	rc := 1.2
	prm := core.Params{
		Alpha: spme.AlphaFromRTol(rc, 1e-4), Rc: rc, Order: 6,
		N: [3]int{32, 32, 32}, Levels: 1, M: 4, Gc: 8,
	}
	tme := core.New(prm, box)
	pipe := machine.NewPipeline(tme)

	fSoft := make([]vec.V, sys.N())
	eSoft := tme.LongRange(sys.Pos, sys.Q, fSoft)
	fHard := make([]vec.V, sys.N())
	eHard := pipe.LongRange(sys.Pos, sys.Q, fHard)

	var num, den float64
	for i := range fSoft {
		num += fHard[i].Sub(fSoft[i]).Norm2()
		den += fSoft[i].Norm2()
	}
	fmt.Printf("long-range energy: float64 %.4f, fixed-point %.4f kJ/mol\n", eSoft, eHard)
	fmt.Printf("relative force difference (fixed-point vs float64): %.2e\n",
		math.Sqrt(num/den))
	fmt.Println("(the 24-bit LRU coefficients and 32-bit grid arithmetic reproduce")
	fmt.Println(" the double-precision mesh forces to ~1e-6 — far below the 1e-4")
	fmt.Println(" method error of Table 1, as the hardware design intends)")
}
