// Waterstructure: run thermostatted TIP3P water MD with TME long-range
// electrostatics and measure the oxygen–oxygen radial distribution
// function — the standard end-to-end physics check of an MD stack
// (liquid TIP3P has its first O–O peak near 0.28 nm).
//
// Run with: go run ./examples/waterstructure [-steps N]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"tme4a/internal/analysis"
	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/water"
)

func main() {
	steps := flag.Int("steps", 400, "production MD steps (1 fs)")
	flag.Parse()

	const side = 8 // 512 waters
	box := water.CubicBoxFor(side * side * side)
	sys := water.Build(side, side, side, box, 17)
	fmt.Printf("TIP3P water: %d molecules, %.3f nm box\n", side*side*side, box.L[0])

	rc := 0.9
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	mesh := core.New(core.Params{
		Alpha: alpha, Rc: rc, Order: 6,
		N: [3]int{16, 16, 16}, Levels: 1, M: 3, Gc: 8,
	}, box)
	sys.InitVelocities(300, rand.New(rand.NewSource(5)))
	integ := &md.Integrator{
		FF:         &md.ForceField{Alpha: alpha, Rc: rc, Skin: 0.15, Mesh: mesh},
		Dt:         0.001,
		Thermostat: &md.CSVR{T: 300, Tau: 0.05, Rng: rand.New(rand.NewSource(6))},
	}

	// Equilibrate, then sample g(r) and the diffusion coefficient.
	fmt.Println("equilibrating 200 steps at 300 K (CSVR)...")
	integ.Run(sys, 200, nil)

	oxy := make([]int, 0, side*side*side)
	for _, w := range sys.RigidWaters {
		oxy = append(oxy, w[0])
	}
	rdf := analysis.NewRDF(box.L[0]/2*0.95, 90)
	msd := analysis.NewMSD(sys.Box, sys.Pos)
	fmt.Printf("sampling %d production steps...\n", *steps)
	integ.Run(sys, *steps, func(s int, e md.Energies) {
		if s%10 == 0 {
			rdf.AddFrame(sys.Box, sys.Pos, oxy, oxy)
			msd.AddFrame(sys.Pos)
		}
	})

	peak, height := rdf.FirstPeak(0.2)
	fmt.Printf("\nO–O g(r) first peak: r = %.3f nm, g = %.2f\n", peak, height)
	fmt.Println("(experimental/TIP3P literature: r ≈ 0.276 nm, g ≈ 2.5–3)")
	d := msd.DiffusionCoefficient(0.010)
	fmt.Printf("diffusion coefficient ≈ %.2e nm²/ps (TIP3P literature ~5e-3)\n", d)
	fmt.Printf("final temperature: %.0f K\n", sys.Temperature())

	rs, g := rdf.G()
	fmt.Println("\nr_nm,g_OO")
	for i := range rs {
		if i%3 == 0 {
			fmt.Printf("%.3f,%.3f\n", rs[i], g[i])
		}
	}
}
