// Waterbox: an NVE molecular-dynamics simulation of TIP3P water with TME
// long-range electrostatics — the paper's Fig. 4 experiment in miniature.
// Velocity Verlet at 1 fs with SETTLE constraints; prints the energy
// ledger every 50 steps and the total-energy drift at the end.
//
// Run with: go run ./examples/waterbox [-steps N] [-mol side]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"

	"tme4a/internal/core"
	"tme4a/internal/md"
	"tme4a/internal/spme"
	"tme4a/internal/water"
)

func main() {
	steps := flag.Int("steps", 300, "number of 1 fs MD steps")
	side := flag.Int("mol", 10, "waters per box edge (side³ molecules)")
	flag.Parse()

	nmol := (*side) * (*side) * (*side)
	box := water.CubicBoxFor(nmol)
	sys := water.Build(*side, *side, *side, box, 2021)
	fmt.Printf("NVE water: %d molecules (%d atoms), box %.3f nm\n",
		nmol, sys.N(), box.L[0])
	fmt.Printf("parallel short-range engine on %d worker(s); "+
		"trajectories are bitwise identical at any GOMAXPROCS\n",
		runtime.GOMAXPROCS(0))

	water.Equilibrate(sys, 200, 0.001, 300, min(0.9, box.L[0]/2.2), 7)
	sys.InitVelocities(300, rand.New(rand.NewSource(11)))

	rc := min(1.2, box.L[0]/2.2)
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	mesh := core.New(core.Params{
		Alpha: alpha, Rc: rc, Order: 6,
		N: [3]int{16, 16, 16}, Levels: 1, M: 3, Gc: 8,
	}, box)
	// Skin > 0 turns on the buffered Verlet pair list; after the first
	// step the engine reuses all scratch, so stepping allocates nothing.
	integ := &md.Integrator{
		FF: &md.ForceField{Alpha: alpha, Rc: rc, Skin: 0.1, Mesh: mesh},
		Dt: 0.001,
	}

	fmt.Printf("%8s %14s %14s %14s %10s\n", "step", "potential", "kinetic", "total", "T (K)")
	var e0, eN md.Energies
	for s := 1; s <= *steps; s++ {
		e := integ.Step(sys)
		if s == 1 {
			e0 = e
		}
		eN = e
		if s%50 == 0 || s == 1 {
			fmt.Printf("%8d %14.3f %14.3f %14.3f %10.1f\n",
				s, e.Potential(), e.Kinetic, e.Total(), sys.Temperature())
		}
	}
	drift := eN.Total() - e0.Total()
	fmt.Printf("\ntotal-energy change over %d fs: %+.3f kJ/mol (%.4f%% of kinetic)\n",
		*steps, drift, 100*abs(drift)/eN.Kinetic)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
