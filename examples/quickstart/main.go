// Quickstart: compute Coulomb forces for a small TIP3P water box with the
// reference Ewald summation, SPME, and TME, and print the relative force
// errors (a miniature of the paper's Table 1).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"tme4a/internal/core"
	"tme4a/internal/ewald"
	"tme4a/internal/spme"
	"tme4a/internal/vec"
	"tme4a/internal/water"
)

func main() {
	// An 8×8×8 lattice of TIP3P waters at liquid density (1,536 atoms).
	const side = 8
	box := water.CubicBoxFor(side * side * side)
	sys := water.Build(side, side, side, box, 42)
	water.Equilibrate(sys, 200, 0.001, 300, 0.9, 1)
	fmt.Printf("water box: %d molecules, %.3f nm cube, T = %.0f K\n",
		side*side*side, box.L[0], sys.Temperature())

	// Reference: converged Ewald summation in double precision.
	eRef, fRef := ewald.Reference(sys.Box, sys.Pos, sys.Q, sys.Excl, 1e-12)
	fmt.Printf("reference Ewald energy: %.3f kJ/mol\n", eRef)

	// Shared parameters (paper conventions): erfc(α·rc) = 1e-4, p = 6.
	// The 16³ grid keeps the TME top level (8³) at least as large as the
	// spline order.
	rc := 1.0
	alpha := spme.AlphaFromRTol(rc, 1e-4)
	grid := [3]int{16, 16, 16}

	// SPME baseline on the same grid.
	sp := spme.New(spme.Params{Alpha: alpha, Rc: rc, Order: 6, N: grid}, box)
	fs := make([]vec.V, sys.N())
	es := sp.Coulomb(sys.Pos, sys.Q, sys.Excl, fs)
	fmt.Printf("SPME:      energy %.3f kJ/mol, relative force error %.2e\n",
		es, relErr(fs, fRef))

	// TME: the paper's contribution. One middle level, four Gaussians,
	// grid cutoff 8, SPME top level with α/2 on the 8³ grid.
	tme := core.New(core.Params{
		Alpha: alpha, Rc: rc, Order: 6, N: grid, Levels: 1, M: 4, Gc: 8,
	}, box)
	ft := make([]vec.V, sys.N())
	et := tme.Coulomb(sys.Pos, sys.Q, sys.Excl, ft)
	fmt.Printf("TME:       energy %.3f kJ/mol, relative force error %.2e\n",
		et, relErr(ft, fRef))

	// Convergence in the number of Gaussians (Table 1's M sweep).
	fmt.Println("\nTME error vs number of Gaussians (gc = 8):")
	for m := 1; m <= 4; m++ {
		t := core.New(core.Params{
			Alpha: alpha, Rc: rc, Order: 6, N: grid, Levels: 1, M: m, Gc: 8,
		}, box)
		f := make([]vec.V, sys.N())
		t.Coulomb(sys.Pos, sys.Q, sys.Excl, f)
		fmt.Printf("  M = %d: %.2e\n", m, relErr(f, fRef))
	}
}

func relErr(f, ref []vec.V) float64 {
	var num, den float64
	for i := range f {
		num += f[i].Sub(ref[i]).Norm2()
		den += ref[i].Norm2()
	}
	return math.Sqrt(num / den)
}
