// Scaling: evaluate the Sec. III.C cost model and the strong-scaling
// comparison of PME, B-spline MSM and TME, and measure the actual
// separable-vs-direct convolution speedup on this host — the computational
// argument for the TME design.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"tme4a/internal/expt"
	"tme4a/internal/grid"
	"tme4a/internal/perfmodel"
)

func main() {
	fmt.Println("=== Sec III.C analytic cost model ===")
	expt.RunCostModel(os.Stdout)

	fmt.Println("\n=== measured: separable (TME) vs direct 3D (MSM) convolution ===")
	rng := rand.New(rand.NewSource(1))
	src := grid.New(32, 32, 32)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	gc := 8
	m := 4
	k1 := make([]float64, 2*gc+1)
	for i := range k1 {
		k1[i] = rng.NormFloat64()
	}
	k3 := make([]float64, len(k1)*len(k1)*len(k1))
	for i := range k3 {
		k3[i] = rng.NormFloat64()
	}

	sep := timeIt(func() {
		for v := 0; v < m; v++ {
			grid.ConvSeparable(src, k1, k1, k1)
		}
	})
	dir := timeIt(func() { grid.ConvDirect3D(src, k3, gc) })
	fmt.Printf("separable (M=%d Gaussians): %v\n", m, sep)
	fmt.Printf("direct 3D (exact kernel):  %v\n", dir)
	fmt.Printf("measured speedup: %.1fx (analytic model predicts %.1fx)\n",
		float64(dir)/float64(sep),
		perfmodel.CompCostMSM(gc, 32)/perfmodel.CompCostTME(gc, 32, m))
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
